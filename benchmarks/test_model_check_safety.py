"""Experiment E5 (Section 4, Theorem 4.5): safety, model-checked.

The paper's central theorem -- replicated state safety for any
reconfigurable protocol satisfying R1⁺/R2/R3 -- is a Coq proof; the
reproduction substitutes bounded exhaustive model checking:

* positive: every reachable state of bounded instances satisfies
  Definition 4.1 plus every Appendix-B invariant (exhaustive within the
  schedule budget);
* negative (ablations): removing any one design rule -- R2, R3, the
  OVERLAP guarantee of R1⁺, or the insertBtw commit placement -- yields
  a concrete counterexample schedule, found automatically.

The heavier R2/R3/OVERLAP hunts run at full scale only with
``REPRO_FULL=1``; by default this module runs the positive
verifications, the insertBtw ablation, and a capped R3 hunt (which
still finds the Fig. 4-class violation).
"""

import os

from repro.analysis import render_table
from repro.cado import cado_explorer
from repro.mc import (
    Explorer,
    OpBudget,
    ablate_insert_btw,
    ablate_overlap,
    ablate_r2,
    ablate_r3,
    verify_intact,
    verify_intact_explorer,
)
from repro.schemes import RaftSingleNodeScheme

from conftest import full_scale


def positive_runs():
    results = []
    results.append((
        "CADO, 3 nodes, (2,2,-,2)",
        cado_explorer(
            frozenset({1, 2, 3}),
            budget=OpBudget(pulls=2, invokes=2, reconfigs=0, pushes=2),
        ).run(),
    ))
    results.append((
        "Adore, 3 nodes, (2,2,1,2)",
        verify_intact(
            budget=OpBudget(pulls=2, invokes=2, reconfigs=1, pushes=2),
            conf0=frozenset({1, 2, 3}),
        ),
    ))
    results.append((
        "Adore, 3 nodes, (2,2,1,2) +symmetry",
        Explorer(
            RaftSingleNodeScheme(),
            frozenset({1, 2, 3}),
            budget=OpBudget(pulls=2, invokes=2, reconfigs=1, pushes=2),
            symmetry=True,
        ).run(),
    ))
    results.append((
        "Adore, 3 nodes, (2,1,2,3)",
        verify_intact(
            budget=OpBudget(pulls=2, invokes=1, reconfigs=2, pushes=3),
            conf0=frozenset({1, 2, 3}),
        ),
    ))
    results.append((
        "Adore, 4 nodes, (2,1,1,2) +symmetry",
        Explorer(
            RaftSingleNodeScheme(),
            frozenset({1, 2, 3, 4}),
            budget=OpBudget(pulls=2, invokes=1, reconfigs=1, pushes=2),
            symmetry=True,
        ).run(),
    ))
    return results


def test_safety_verification(benchmark, report, bench_json):
    results = benchmark.pedantic(positive_runs, rounds=1, iterations=1)
    bench_json({
        name: {"states": res.states_visited, "transitions": res.transitions,
               "depth": res.max_depth, "safe": res.safe,
               "exhausted": res.exhausted}
        for name, res in results
    })
    rows = [
        (
            name,
            res.states_visited,
            res.transitions,
            res.max_depth,
            "exhaustive" if res.exhausted else "truncated",
            "SAFE" if res.safe else "VIOLATED",
        )
        for name, res in results
    ]
    report(
        "",
        "=" * 72,
        "E5 / Theorem 4.5 -- bounded exhaustive safety verification",
        "(budget = max pulls/invokes/reconfigs/pushes per schedule;",
        " every state checked against Definition 4.1 + all Appendix-B",
        " invariants: descendant order, leader-time uniqueness,",
        " election-commit order, CCache-in-RCache-fork, version reset)",
        "=" * 72,
        render_table(
            ["instance", "states", "transitions", "depth", "coverage",
             "result"],
            rows,
        ),
    )
    for name, res in results:
        assert res.safe, f"{name}: {res.violations[0].describe()}"
        assert res.exhausted, name


def test_ablation_counterexamples(benchmark, report, bench_json):
    def hunt():
        results = [("insertBtw -> addLeaf", ablate_insert_btw())]
        if full_scale():
            results.append(("no R3 (pre-fix Raft)", ablate_r3()))
            results.append(("no R2", ablate_r2()))
            results.append(("no OVERLAP", ablate_overlap()))
        else:
            results.append(
                ("no R3 (pre-fix Raft)", ablate_r3(max_states=30_000))
            )
            results.append(("no OVERLAP", ablate_overlap(max_states=30_000)))
        return results

    results = benchmark.pedantic(hunt, rounds=1, iterations=1)
    bench_json({
        name: {
            "states": res.states_visited,
            "depth": len(res.violations[0].trace) if res.violations else None,
            "elapsed_s": res.elapsed_seconds,
            "found": bool(res.violations),
        }
        for name, res in results
    })
    rows = []
    for name, res in results:
        first = res.violations[0] if res.violations else None
        rows.append((
            name,
            res.states_visited,
            len(first.trace) if first else "-",
            f"{res.elapsed_seconds:.2f}s",
            "VIOLATION FOUND" if first else "NOT FOUND",
        ))
    report(
        "",
        "E5 ablations -- each rule removed, counterexample hunted:",
        render_table(
            ["ablation", "states explored", "schedule depth", "time",
             "result"],
            rows,
        ),
        ""
        if full_scale()
        else "(set REPRO_FULL=1 for the R2 hunt; it takes ~1 minute)",
    )
    for name, res in results:
        assert not res.safe, f"{name}: expected a violation"

    # The paper's counterexample shapes.
    by_name = dict(results)
    assert len(by_name["insertBtw -> addLeaf"].violations[0].trace) == 5
    assert len(by_name["no R3 (pre-fix Raft)"].violations[0].trace) == 8
    if full_scale():
        assert len(by_name["no R2"].violations[0].trace) == 10


#: The schedule class the engine-comparison benchmark certifies.
PARALLEL_BENCH_BUDGET = OpBudget(pulls=2, invokes=2, reconfigs=1, pushes=2)


def test_parallel_engine_equivalence_and_speedup(benchmark, report,
                                                 bench_json):
    """The parallel work-queue engine vs the sequential explorer.

    Both engines run the same ``expand`` step semantics, so on the same
    instance they must visit the identical state set and reach the
    identical verdict; on a multicore machine the level-partitioned
    engine should visit states at least 2x faster with 4 workers.  The
    speedup assertion is gated on the hardware actually having the
    cores -- on fewer than 4 CPUs the numbers are recorded but only
    equivalence is enforced.
    """
    workers = 4

    def measure():
        seq = verify_intact(budget=PARALLEL_BENCH_BUDGET)
        par = verify_intact(budget=PARALLEL_BENCH_BUDGET, workers=workers)
        return seq, par

    seq, par = benchmark.pedantic(measure, rounds=1, iterations=1)
    speedup = (
        seq.elapsed_seconds / par.elapsed_seconds
        if par.elapsed_seconds > 0
        else float("inf")
    )
    cpus = os.cpu_count() or 1
    bench_json({
        "sequential": {"states": seq.states_visited,
                       "states_per_s": seq.states_per_second,
                       "elapsed_s": seq.elapsed_seconds},
        "parallel": {"workers": workers, "states": par.states_visited,
                     "states_per_s": par.states_per_second,
                     "elapsed_s": par.elapsed_seconds},
        "speedup": speedup,
        "cpus": cpus,
    })
    report(
        "",
        "E5 / parallel model-checking engine (level-synchronized BFS):",
        render_table(
            ["engine", "states", "states/s", "time", "result"],
            [
                ("sequential", seq.states_visited,
                 f"{seq.states_per_second:,.0f}",
                 f"{seq.elapsed_seconds:.2f}s",
                 "SAFE" if seq.safe else "VIOLATED"),
                (f"parallel x{workers}", par.states_visited,
                 f"{par.states_per_second:,.0f}",
                 f"{par.elapsed_seconds:.2f}s",
                 "SAFE" if par.safe else "VIOLATED"),
            ],
        ),
        f"speedup: {speedup:.2f}x on {cpus} CPU(s); "
        f"engine: {par.stats.describe()}",
    )
    assert seq.safe and par.safe
    assert seq.states_visited == par.states_visited
    assert seq.transitions == par.transitions
    assert seq.max_depth == par.max_depth
    assert seq.exhausted and par.exhausted
    if cpus >= workers:
        assert speedup >= 2.0, (
            f"expected >= 2x speedup with {workers} workers on {cpus} "
            f"CPUs, measured {speedup:.2f}x"
        )


def test_parallel_engine_resumes_from_checkpoint(benchmark, report, tmp_path,
                                                 bench_json):
    """A time-sliced run plus its resume certify the same space as one
    uninterrupted run (the CI-time-slice scenario)."""
    path = str(tmp_path / "bench-checkpoint.pkl")
    budget = OpBudget(pulls=1, invokes=2, reconfigs=1, pushes=2)

    def measure():
        from repro.mc import ParallelExplorer

        slice1 = ParallelExplorer(
            verify_intact_explorer(budget),
            workers=2, checkpoint=path, max_levels=3,
        ).run()
        resumed = ParallelExplorer(
            verify_intact_explorer(budget),
            workers=2, checkpoint=path,
        ).run()
        whole = verify_intact_explorer(budget).run()
        return slice1, resumed, whole

    slice1, resumed, whole = benchmark.pedantic(measure, rounds=1, iterations=1)
    bench_json({
        "slice1_states": slice1.states_visited,
        "resumed_states": resumed.states_visited,
        "whole_states": whole.states_visited,
        "resumed_exhausted": resumed.exhausted,
    })
    report(
        "",
        "E5 / checkpoint-resume (interrupted after 3 BFS levels):",
        render_table(
            ["run", "states", "depth", "coverage"],
            [
                ("slice 1 (interrupted)", slice1.states_visited,
                 slice1.max_depth, "resumable"),
                ("slice 2 (resumed)", resumed.states_visited,
                 resumed.max_depth,
                 "exhaustive" if resumed.exhausted else "truncated"),
                ("uninterrupted", whole.states_visited, whole.max_depth,
                 "exhaustive" if whole.exhausted else "truncated"),
            ],
        ),
    )
    assert slice1.interrupted and not slice1.exhausted
    assert resumed.states_visited == whole.states_visited
    assert resumed.transitions == whole.transitions
    assert resumed.safe == whole.safe
    assert resumed.exhausted == whole.exhausted


def test_adore_vs_cado_checking_cost(benchmark, report, bench_json):
    """The paper: adding reconfiguration to CADO took 3 more
    person-weeks on top of 2 (and 4.5k vs 1.3k Coq lines).  Analogue:
    the state-space cost reconfiguration adds at identical budgets."""

    def measure():
        budget = OpBudget(pulls=2, invokes=1, reconfigs=1, pushes=2)
        cado = cado_explorer(
            frozenset({1, 2, 3}),
            budget=OpBudget(pulls=2, invokes=1, reconfigs=0, pushes=2),
        ).run()
        adore = Explorer(
            RaftSingleNodeScheme(), frozenset({1, 2, 3}), budget=budget
        ).run()
        return cado, adore

    cado, adore = benchmark.pedantic(measure, rounds=1, iterations=1)
    bench_json({
        "cado_states": cado.states_visited,
        "adore_states": adore.states_visited,
        "ratio": adore.states_visited / max(1, cado.states_visited),
    })
    report(
        "",
        "E5 / CADO vs Adore verification cost (same non-reconfig budget):",
        render_table(
            ["model", "states", "transitions", "time"],
            [
                ("CADO", cado.states_visited, cado.transitions,
                 f"{cado.elapsed_seconds:.2f}s"),
                ("Adore (+1 reconfig)", adore.states_visited,
                 adore.transitions, f"{adore.elapsed_seconds:.2f}s"),
            ],
        ),
        f"reconfiguration multiplies the checked space by "
        f"{adore.states_visited / max(1, cado.states_visited):.1f}x "
        f"(paper: 4.5k vs 1.3k Coq lines; 3 extra person-weeks on 2)",
    )
    assert cado.safe and adore.safe
    assert adore.states_visited > cado.states_visited
