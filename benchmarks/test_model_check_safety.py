"""Experiment E5 (Section 4, Theorem 4.5): safety, model-checked.

The paper's central theorem -- replicated state safety for any
reconfigurable protocol satisfying R1⁺/R2/R3 -- is a Coq proof; the
reproduction substitutes bounded exhaustive model checking:

* positive: every reachable state of bounded instances satisfies
  Definition 4.1 plus every Appendix-B invariant (exhaustive within the
  schedule budget);
* negative (ablations): removing any one design rule -- R2, R3, the
  OVERLAP guarantee of R1⁺, or the insertBtw commit placement -- yields
  a concrete counterexample schedule, found automatically.

The heavier R2/R3/OVERLAP hunts run at full scale only with
``REPRO_FULL=1``; by default this module runs the positive
verifications, the insertBtw ablation, and a capped R3 hunt (which
still finds the Fig. 4-class violation).
"""

from repro.analysis import render_table
from repro.cado import cado_explorer
from repro.mc import (
    Explorer,
    OpBudget,
    ablate_insert_btw,
    ablate_overlap,
    ablate_r2,
    ablate_r3,
    verify_intact,
)
from repro.schemes import RaftSingleNodeScheme

from conftest import full_scale


def positive_runs():
    results = []
    results.append((
        "CADO, 3 nodes, (2,2,-,2)",
        cado_explorer(
            frozenset({1, 2, 3}),
            budget=OpBudget(pulls=2, invokes=2, reconfigs=0, pushes=2),
        ).run(),
    ))
    results.append((
        "Adore, 3 nodes, (2,2,1,2)",
        verify_intact(
            budget=OpBudget(pulls=2, invokes=2, reconfigs=1, pushes=2),
            conf0=frozenset({1, 2, 3}),
        ),
    ))
    results.append((
        "Adore, 3 nodes, (2,2,1,2) +symmetry",
        Explorer(
            RaftSingleNodeScheme(),
            frozenset({1, 2, 3}),
            budget=OpBudget(pulls=2, invokes=2, reconfigs=1, pushes=2),
            symmetry=True,
        ).run(),
    ))
    results.append((
        "Adore, 3 nodes, (2,1,2,3)",
        verify_intact(
            budget=OpBudget(pulls=2, invokes=1, reconfigs=2, pushes=3),
            conf0=frozenset({1, 2, 3}),
        ),
    ))
    results.append((
        "Adore, 4 nodes, (2,1,1,2) +symmetry",
        Explorer(
            RaftSingleNodeScheme(),
            frozenset({1, 2, 3, 4}),
            budget=OpBudget(pulls=2, invokes=1, reconfigs=1, pushes=2),
            symmetry=True,
        ).run(),
    ))
    return results


def test_safety_verification(benchmark, report):
    results = benchmark.pedantic(positive_runs, rounds=1, iterations=1)
    rows = [
        (
            name,
            res.states_visited,
            res.transitions,
            res.max_depth,
            "exhaustive" if res.exhausted else "truncated",
            "SAFE" if res.safe else "VIOLATED",
        )
        for name, res in results
    ]
    report(
        "",
        "=" * 72,
        "E5 / Theorem 4.5 -- bounded exhaustive safety verification",
        "(budget = max pulls/invokes/reconfigs/pushes per schedule;",
        " every state checked against Definition 4.1 + all Appendix-B",
        " invariants: descendant order, leader-time uniqueness,",
        " election-commit order, CCache-in-RCache-fork, version reset)",
        "=" * 72,
        render_table(
            ["instance", "states", "transitions", "depth", "coverage",
             "result"],
            rows,
        ),
    )
    for name, res in results:
        assert res.safe, f"{name}: {res.violations[0].describe()}"
        assert res.exhausted, name


def test_ablation_counterexamples(benchmark, report):
    def hunt():
        results = [("insertBtw -> addLeaf", ablate_insert_btw())]
        if full_scale():
            results.append(("no R3 (pre-fix Raft)", ablate_r3()))
            results.append(("no R2", ablate_r2()))
            results.append(("no OVERLAP", ablate_overlap()))
        else:
            results.append(
                ("no R3 (pre-fix Raft)", ablate_r3(max_states=30_000))
            )
            results.append(("no OVERLAP", ablate_overlap(max_states=30_000)))
        return results

    results = benchmark.pedantic(hunt, rounds=1, iterations=1)
    rows = []
    for name, res in results:
        first = res.violations[0] if res.violations else None
        rows.append((
            name,
            res.states_visited,
            len(first.trace) if first else "-",
            f"{res.elapsed_seconds:.2f}s",
            "VIOLATION FOUND" if first else "NOT FOUND",
        ))
    report(
        "",
        "E5 ablations -- each rule removed, counterexample hunted:",
        render_table(
            ["ablation", "states explored", "schedule depth", "time",
             "result"],
            rows,
        ),
        ""
        if full_scale()
        else "(set REPRO_FULL=1 for the R2 hunt; it takes ~1 minute)",
    )
    for name, res in results:
        assert not res.safe, f"{name}: expected a violation"

    # The paper's counterexample shapes.
    by_name = dict(results)
    assert len(by_name["insertBtw -> addLeaf"].violations[0].trace) == 5
    assert len(by_name["no R3 (pre-fix Raft)"].violations[0].trace) == 8
    if full_scale():
        assert len(by_name["no R2"].violations[0].trace) == 10


def test_adore_vs_cado_checking_cost(benchmark, report):
    """The paper: adding reconfiguration to CADO took 3 more
    person-weeks on top of 2 (and 4.5k vs 1.3k Coq lines).  Analogue:
    the state-space cost reconfiguration adds at identical budgets."""

    def measure():
        budget = OpBudget(pulls=2, invokes=1, reconfigs=1, pushes=2)
        cado = cado_explorer(
            frozenset({1, 2, 3}),
            budget=OpBudget(pulls=2, invokes=1, reconfigs=0, pushes=2),
        ).run()
        adore = Explorer(
            RaftSingleNodeScheme(), frozenset({1, 2, 3}), budget=budget
        ).run()
        return cado, adore

    cado, adore = benchmark.pedantic(measure, rounds=1, iterations=1)
    report(
        "",
        "E5 / CADO vs Adore verification cost (same non-reconfig budget):",
        render_table(
            ["model", "states", "transitions", "time"],
            [
                ("CADO", cado.states_visited, cado.transitions,
                 f"{cado.elapsed_seconds:.2f}s"),
                ("Adore (+1 reconfig)", adore.states_visited,
                 adore.transitions, f"{adore.elapsed_seconds:.2f}s"),
            ],
        ),
        f"reconfiguration multiplies the checked space by "
        f"{adore.states_visited / max(1, cado.states_visited):.1f}x "
        f"(paper: 4.5k vs 1.3k Coq lines; 3 extra person-weeks on 2)",
    )
    assert cado.safe and adore.safe
    assert adore.states_visited > cado.states_visited
