"""Experiment E8 (extension): throughput degradation under message loss.

The paper measures the reconfiguration protocol on a healthy EC2
network; this extension measures how the same executable specification
degrades as the network gets *worse*.  A seeded nemesis workload (no
crashes or partitions -- the independent variable is loss alone) runs
at increasing per-message drop rates; we report client throughput in
ops per simulated second and the unknown-outcome rate.  Safety and
linearizability are asserted at every operating point: a lossy network
may slow the system down, but it must never corrupt it.
"""

import statistics

from repro.analysis import render_table
from repro.runtime import NemesisConfig, NetworkConditions, run_nemesis

DROP_RATES = (0.0, 0.05, 0.10, 0.20)
SEEDS = range(4)
OPS = 150


def measure_degradation():
    results = {}
    for drop in DROP_RATES:
        throughputs, unknown = [], 0
        for seed in SEEDS:
            run = run_nemesis(
                NemesisConfig(
                    seed=seed,
                    ops=OPS,
                    conditions=NetworkConditions(
                        drop_prob=drop, duplicate_prob=0.01
                    ),
                )
            )
            assert run.safety_violations == []
            assert run.linearizability.ok
            throughputs.append(
                run.stats.ops_completed / (run.stats.sim_ms / 1000.0)
            )
            unknown += run.stats.ops_unknown
        results[drop] = (throughputs, unknown)
    return results


def test_chaos_throughput_degradation(benchmark, report, bench_json):
    results = benchmark.pedantic(measure_degradation, rounds=1, iterations=1)
    bench_json({
        f"drop={drop:.2f}": {
            "mean_ops_per_sim_s": statistics.mean(throughputs),
            "min_ops_per_sim_s": min(throughputs),
            "unknown_ops": unknown,
        }
        for drop, (throughputs, unknown) in sorted(results.items())
    })
    rows = []
    for drop, (throughputs, unknown) in sorted(results.items()):
        rows.append((
            f"{drop:.0%}",
            f"{statistics.mean(throughputs):.0f}",
            f"{min(throughputs):.0f}",
            f"{unknown}",
        ))
    report(
        "",
        "=" * 72,
        "E8 (extension) -- KV throughput vs. message drop rate",
        f"({len(list(SEEDS))} seeds x {OPS} ops per point; faults: "
        "drops + 1% duplication; simulated time)",
        "=" * 72,
        render_table(
            ["drop rate", "mean ops/sim-s", "min ops/sim-s", "unknown ops"],
            rows,
        ),
    )
    healthy = statistics.mean(results[0.0][0])
    lossy = statistics.mean(results[max(DROP_RATES)][0])
    # Loss costs throughput (retransmission-by-retry), and visibly so.
    assert lossy < healthy
    # But not availability at these rates: most ops still complete.
    total = len(list(SEEDS)) * OPS
    for drop, (_, unknown) in results.items():
        assert unknown < total * 0.2
