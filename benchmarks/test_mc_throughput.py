"""Model-checker throughput: seed engine vs optimized engine (ISSUE 5).

Measures states/second and peak RSS for the frozen seed engine
(:mod:`repro.mc.legacy` -- the explorer as it stood before hash-consed
trees, incremental fingerprints and the compact visited set) against
the current engine, on the Fig. 4 intact verification budget and on
that budget deepened by one operation (``invokes + 1``,
``max_states``-capped so the comparison stays affordable).

Measurement protocol
--------------------

* Each run happens in a fresh forked child process, so ``ru_maxrss``
  is a clean per-engine high-water mark and each run pays the full
  cold-start cost (no process-wide intern tables carried over).
* Each child records both wall-clock and CPU time
  (``time.process_time``).  The speedup gate uses **CPU time**: CI
  runners and shared development machines deschedule single-threaded
  processes unpredictably, and a noisy neighbour during one engine's
  run would otherwise swing the ratio by tens of percent.  Wall-clock
  numbers are reported alongside for context.
* The gated depth runs each engine twice, interleaved
  (seed/new/seed/new), and scores each engine by its best run.  Both
  engines get the same treatment, so drift in machine load between
  runs cannot systematically favour either.

Asserts the two acceptance criteria directly:

* exact parity -- state count, transition count, verdict -- between the
  engines across every run at every depth, and
* the optimized engine sustains >= 5x the seed engine's states/second
  on the intact budget, single worker.

Results land in ``BENCH_mc_throughput.json`` via ``bench_json``.
"""

import multiprocessing
import resource
import sys
import time

from repro.mc import legacy
from repro.mc.ablations import verify_intact_explorer
from repro.mc.explorer import OpBudget

#: The Fig. 4 intact verification budget (matches
#: repro.mc.ablations.verify_intact_explorer's default).
INTACT_BUDGET = dict(pulls=2, invokes=2, reconfigs=2, pushes=2)
#: One operation deeper; capped so the seed engine finishes in CI time.
DEEPER_BUDGET = dict(pulls=2, invokes=3, reconfigs=2, pushes=2)
DEEPER_MAX_STATES = 40_000

SPEEDUP_FLOOR = 5.0


def _run_engine(make_explorer, budget_kwargs, max_states, conn):
    budget = OpBudget(**budget_kwargs)
    explorer = make_explorer(budget=budget, max_states=max_states)
    wall_started = time.monotonic()
    cpu_started = time.process_time()
    result = explorer.run()
    cpu = time.process_time() - cpu_started
    wall = time.monotonic() - wall_started
    first = None
    if result.violations:
        violation = result.violations[0]
        first = (
            tuple(repr(op) for op in violation.trace),
            tuple(violation.report.all_violations()),
        )
    conn.send({
        "states": result.states_visited,
        "transitions": result.transitions,
        "violations": len(result.violations),
        "first_violation": first,
        "exhausted": result.exhausted,
        "elapsed_seconds": wall,
        "cpu_seconds": cpu,
        "states_per_second": result.states_visited / cpu if cpu else 0.0,
        "peak_rss_kib": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    })
    conn.close()


def measure(make_explorer, budget_kwargs, max_states=500_000):
    """Run one engine cold in a fresh forked child; return its metrics."""
    context = multiprocessing.get_context("fork")
    parent_conn, child_conn = context.Pipe(duplex=False)
    process = context.Process(
        target=_run_engine,
        args=(make_explorer, budget_kwargs, max_states, child_conn),
    )
    process.start()
    child_conn.close()
    payload = parent_conn.recv()
    process.join()
    assert process.exitcode == 0
    return payload


def parity_fields(payload):
    return {
        key: payload[key]
        for key in ("states", "transitions", "violations", "first_violation",
                    "exhausted")
    }


def best_of(payloads):
    """The payload with the highest states/second (lowest CPU time)."""
    return max(payloads, key=lambda p: p["states_per_second"])


def test_mc_throughput(report, bench_json):
    if sys.platform == "win32":
        # measure() needs fork for closure-bearing explorer configs.
        import pytest

        pytest.skip("throughput benchmark requires the fork start method")

    rows = {}
    for depth, budget_kwargs, max_states, repeats in (
        ("budget", INTACT_BUDGET, 500_000, 2),
        ("budget+1", DEEPER_BUDGET, DEEPER_MAX_STATES, 1),
    ):
        seed_runs, new_runs = [], []
        for _ in range(repeats):  # interleaved: seed, new, seed, new
            seed_runs.append(
                measure(legacy.verify_intact_explorer, budget_kwargs, max_states)
            )
            new_runs.append(
                measure(verify_intact_explorer, budget_kwargs, max_states)
            )
        for run in seed_runs[1:] + new_runs:
            assert parity_fields(seed_runs[0]) == parity_fields(run), (
                f"engines diverged at depth {depth}"
            )
        seed, new = best_of(seed_runs), best_of(new_runs)
        speedup = (
            new["states_per_second"] / seed["states_per_second"]
            if seed["states_per_second"]
            else float("inf")
        )
        rows[depth] = {
            "budget": budget_kwargs,
            "max_states": max_states,
            "runs_per_engine": repeats,
            "states": new["states"],
            "transitions": new["transitions"],
            "exhausted": new["exhausted"],
            "seed": {
                "elapsed_seconds": seed["elapsed_seconds"],
                "cpu_seconds": seed["cpu_seconds"],
                "states_per_second": seed["states_per_second"],
                "peak_rss_kib": seed["peak_rss_kib"],
            },
            "optimized": {
                "elapsed_seconds": new["elapsed_seconds"],
                "cpu_seconds": new["cpu_seconds"],
                "states_per_second": new["states_per_second"],
                "peak_rss_kib": new["peak_rss_kib"],
            },
            "speedup": speedup,
        }

    lines = [
        "",
        "Model-checker throughput: seed engine vs optimized engine",
        "(states/second over CPU time, best of the interleaved runs)",
        f"{'depth':>10} {'states':>8} {'seed st/s':>10} {'new st/s':>10} "
        f"{'speedup':>8} {'seed RSS':>10} {'new RSS':>10}",
    ]
    for depth, row in rows.items():
        lines.append(
            f"{depth:>10} {row['states']:>8} "
            f"{row['seed']['states_per_second']:>10,.0f} "
            f"{row['optimized']['states_per_second']:>10,.0f} "
            f"{row['speedup']:>7.1f}x "
            f"{row['seed']['peak_rss_kib'] / 1024:>8.0f}Mi "
            f"{row['optimized']['peak_rss_kib'] / 1024:>8.0f}Mi"
        )
    report(*lines)
    bench_json(rows)

    # The acceptance bar: >= 5x states/second on the intact Fig. 4
    # budget, single worker.
    assert rows["budget"]["speedup"] >= SPEEDUP_FLOOR, (
        f"optimized engine is only {rows['budget']['speedup']:.2f}x the "
        f"seed engine (floor: {SPEEDUP_FLOOR}x)"
    )
