"""Experiments E4 + E6 (Section 7 "Refinement", Section 5/Appendix C).

Paper claims reproduced:

* the refinement (and therefore the safety transfer) is parameterized
  over the same isQuorum/R1⁺ as Adore, and instantiating a scheme plus
  discharging its side conditions is trivial -- here: REFLEXIVE and
  OVERLAP checked exhaustively per scheme over bounded universes, with
  case counts (E4);
* the Raft → SRaft → Adore refinement pipeline -- invalid-message
  filtering (C.3), global reordering (C.7), atomic grouping (C.9), and
  the lockstep simulation preserving ℝ (C.1) -- validated over
  randomized asynchronous traces (E6).
"""

import random

from repro.analysis import render_table
from repro.raft import Deliver, RaftSystem
from repro.refinement import (
    SimulationChecker,
    atomic_groups,
    check_equivalent,
    filter_invalid,
    normalize,
)
from repro.schemes import (
    DynamicQuorumScheme,
    JointConsensusScheme,
    PrimaryBackupScheme,
    RaftSingleNodeScheme,
    RotatingPrimaryScheme,
    StaticScheme,
    UnanimousScheme,
    UnsafeMultiNodeScheme,
    WeightedMajorityScheme,
    check_assumptions,
)

CONF = frozenset({1, 2, 3})
SCHEME = RaftSingleNodeScheme()


# ----------------------------------------------------------------------
# E4: scheme instantiations
# ----------------------------------------------------------------------

def check_all():
    schemes = [
        RaftSingleNodeScheme(),
        JointConsensusScheme(),
        PrimaryBackupScheme(),
        RotatingPrimaryScheme(),
        DynamicQuorumScheme(),
        UnanimousScheme(),
        WeightedMajorityScheme(),
        StaticScheme(),
    ]
    good = [(s, check_assumptions(s, [1, 2, 3])) for s in schemes]
    bad = check_assumptions(
        UnsafeMultiNodeScheme(), [1, 2, 3, 4], stop_at_first=True
    )
    return good, bad


def test_scheme_instantiations(benchmark, report, bench_json):
    good, bad = benchmark.pedantic(check_all, rounds=1, iterations=1)
    bench_json({
        **{
            scheme.name: {
                "configs": rep.configs_checked,
                "quorum_pairs": rep.quorum_pairs_checked,
                "ok": rep.ok,
            }
            for scheme, rep in good
        },
        "unsafe_multi_node": {
            "ok": bad.ok, "overlap_violations": len(bad.overlap_violations),
        },
    })
    rows = [
        (
            scheme.name,
            rep.configs_checked,
            rep.transition_pairs,
            rep.quorum_pairs_checked,
            "OK" if rep.ok else "VIOLATED",
        )
        for scheme, rep in good
    ]
    rows.append((
        "unsafe-multi-node (ablation)",
        bad.configs_checked,
        bad.transition_pairs,
        bad.quorum_pairs_checked,
        "VIOLATED (expected)",
    ))
    report(
        "",
        "=" * 72,
        "E4 / Section 6-7 -- scheme instantiations: REFLEXIVE + OVERLAP",
        "(exhaustive over a 3-node universe; 4-node for the broken scheme)",
        "=" * 72,
        render_table(
            ["scheme", "configs", "R1+ transitions", "quorum pairs", "result"],
            rows,
        ),
    )
    assert all(rep.ok for _, rep in good)
    assert not bad.ok and bad.overlap_violations


# ----------------------------------------------------------------------
# E6: the refinement pipeline
# ----------------------------------------------------------------------

def random_async_trace(seed: int, steps: int = 20):
    rng = random.Random(seed)
    system = RaftSystem(CONF, SCHEME)
    counter = 0
    for _ in range(steps):
        op = rng.choice(["elect", "invoke", "commit", "deliver", "deliver",
                         "deliver"])
        nid = rng.choice(sorted(CONF))
        if op == "elect":
            system.elect(nid)
        elif op == "invoke":
            counter += 1
            system.invoke(nid, f"m{counter}")
        elif op == "commit":
            system.commit(nid)
        else:
            pending = list(system.network.in_flight())
            if pending:
                system.deliver(rng.choice(pending))
    return system.trace


def refinement_pipeline(n_traces: int = 25):
    stats = []
    for seed in range(n_traces):
        trace = random_async_trace(seed)
        filtered = filter_invalid(CONF, SCHEME, trace)
        ordered = normalize(CONF, SCHEME, trace)
        assert check_equivalent(CONF, SCHEME, trace, filtered) == []
        assert check_equivalent(CONF, SCHEME, trace, ordered) == []
        groups = atomic_groups(ordered)
        deliveries = sum(1 for e in trace if isinstance(e, Deliver))
        kept = sum(1 for e in ordered if isinstance(e, Deliver))
        rounds = sum(
            1 for g in groups if isinstance(g[0], Deliver) and len(g) > 1
        )
        stats.append((seed, len(trace), deliveries, deliveries - kept, rounds))
    return stats


def test_trace_transformations(benchmark, report, bench_json):
    stats = benchmark.pedantic(refinement_pipeline, rounds=1, iterations=1)
    total_events = sum(s[1] for s in stats)
    total_deliveries = sum(s[2] for s in stats)
    total_dropped = sum(s[3] for s in stats)
    total_rounds = sum(s[4] for s in stats)
    bench_json({
        "traces": len(stats),
        "events": total_events,
        "deliveries": total_deliveries,
        "invalid_dropped": total_dropped,
        "atomic_rounds": total_rounds,
    })
    report(
        "",
        "=" * 72,
        "E6 / Appendix C -- Raft -> SRaft trace transformations",
        "=" * 72,
        render_table(
            ["traces", "events", "deliveries", "invalid dropped (C.3)",
             "atomic rounds (C.9)", "R_net preserved"],
            [(len(stats), total_events, total_deliveries, total_dropped,
              total_rounds, "yes (all)")],
        ),
    )
    assert total_dropped > 0  # asynchrony produced some stale messages
    assert total_rounds > 0


def lockstep_simulation(steps: int = 120, seed: int = 7, checker=None):
    rng = random.Random(seed)
    sim = (checker or SimulationChecker)(CONF, SCHEME, extra_nodes=[4])
    nodes = [1, 2, 3, 4]
    counter = 0
    mirrored = 0
    for _ in range(steps):
        op = rng.choice(["elect", "invoke", "commit", "commit", "reconfig"])
        nid = rng.choice(nodes)
        others = [n for n in nodes if n != nid]
        group = rng.sample(others, rng.randint(0, len(others)))
        try:
            if op == "elect":
                sim.elect(nid, group)
            elif op == "invoke":
                counter += 1
                sim.invoke(nid, f"m{counter}")
            elif op == "commit":
                sim.commit(nid, group)
            else:
                conf = frozenset(sim.sraft.servers[nid].config())
                choices = [conf | {n} for n in nodes if n not in conf]
                choices += [conf - {n} for n in conf if len(conf) > 1]
                sim.reconfig(nid, rng.choice(choices))
            mirrored += 1
        except Exception as exc:  # noqa: BLE001
            from repro.core.errors import InvalidOperation

            if isinstance(exc, InvalidOperation):
                continue  # SRaft scheduling refusal, not a relation break
            raise
    return sim, mirrored


def test_sraft_adore_simulation(benchmark, report, bench_json):
    sim, mirrored = benchmark.pedantic(
        lockstep_simulation, rounds=1, iterations=1
    )
    ok_steps = sum(1 for s in sim.steps if s.ok)
    bench_json({
        "rounds_mirrored": mirrored,
        "ok_steps": ok_steps,
        "total_steps": len(sim.steps),
        "relation_held": sim.ok,
    })
    report(
        "",
        "E6 / Lemma C.1 -- SRaft -> Adore lockstep simulation:",
        f"  {mirrored} rounds mirrored, ℝ (logMatch + times + commit "
        f"prefixes) held after {ok_steps}/{len(sim.steps)} steps",
        f"  final tree: {len(sim.adore.tree)} caches, "
        f"{len(sim.adore.tree.ccaches())} commits",
    )
    assert sim.ok
    assert mirrored >= 100


def test_spaxos_adore_simulation(benchmark, report, bench_json):
    """The same refinement relation over the multi-Paxos variant --
    the paper: "this relation can be proved for many protocols,
    including various Paxos variants and Raft"."""
    from repro.refinement import PaxosSimulationChecker

    sim, mirrored = benchmark.pedantic(
        lockstep_simulation,
        rounds=1,
        iterations=1,
        kwargs={"checker": PaxosSimulationChecker, "seed": 11},
    )
    ok_steps = sum(1 for s in sim.steps if s.ok)
    bench_json({
        "rounds_mirrored": mirrored,
        "ok_steps": ok_steps,
        "total_steps": len(sim.steps),
        "relation_held": sim.ok,
    })
    report(
        "",
        "E6 / multi-Paxos variant -> Adore lockstep simulation:",
        f"  {mirrored} rounds mirrored (promise-based elections adopt "
        f"logs = mostRecent), ℝ held after {ok_steps}/{len(sim.steps)} "
        "steps",
    )
    assert sim.ok
    assert mirrored >= 60
