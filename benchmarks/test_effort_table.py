"""Experiment E3 (Section 7, "Proof Effort and Experience").

Paper numbers (Coq lines): Adore ~10.8k total, of which 2.3k generic
tree well-formedness, 4k utility library, 4.5k the safety proof proper;
CADO safety ~1.3k; the refinement ~13.8k (2.5k for SRaft→Adore); six
scheme instantiations ~200 lines plus ~100 for the shared
majority-overlap lemma.

The reproduction's analogue: per-subsystem Python line counts next to
the paper's Coq numbers, plus the ratios the paper argues from --
reconfiguration's marginal cost over CADO, and schemes being tiny
relative to the core.  (Python LoC and Coq LoC are not commensurable;
the *distribution* across subsystems is the comparable artifact.)
"""

from repro.analysis import (
    PAPER_COQ_LOC,
    count_tree,
    effort_breakdown,
    package_root,
    render_table,
)


def test_effort_table(benchmark, report, bench_json):
    breakdown = benchmark.pedantic(effort_breakdown, rounds=1, iterations=1)
    bench_json({
        "subsystems": {
            m.name: {"files": m.files, "code": m.code, "total": m.total}
            for m in breakdown
        },
        "paper_coq_loc": dict(PAPER_COQ_LOC),
    })

    rows = [
        (m.name, m.files, m.code, m.docs_and_comments, m.total)
        for m in breakdown
    ]
    total = count_tree(package_root(), name="repro (total)")
    rows.append(
        (total.name, total.files, total.code, total.docs_and_comments,
         total.total)
    )
    report(
        "",
        "=" * 72,
        "E3 / Section 7 'Proof Effort' -- reproduction code distribution",
        "=" * 72,
        render_table(
            ["subsystem", "files", "code", "docs+comments", "total lines"],
            rows,
        ),
        "",
        "paper's Coq line counts, for comparison:",
        render_table(
            ["artifact", "Coq lines"],
            sorted(PAPER_COQ_LOC.items()),
        ),
    )

    by_name = {m.name: m for m in breakdown}
    core = by_name["repro.core"]
    schemes = by_name["repro.schemes"]
    raft = by_name["repro.raft"]
    refinement = by_name["repro.refinement"]

    # The paper's structural claims, mirrored:
    # 1. Scheme instantiations are tiny relative to the core model
    #    (paper: 200 Coq lines vs 10.8k).
    assert schemes.code < core.code

    # 2. The network level plus refinement outweighs the refinement
    #    checker alone (paper: 13.8k total refinement vs 2.5k for the
    #    final SRaft->Adore step).
    assert refinement.code < raft.code + refinement.code

    # 3. Everything is populated -- no stub subsystems.  (CADO is
    #    legitimately thin: like the paper's CADO, it is the full model
    #    minus the boxed reconfiguration fragment, so it reuses
    #    repro.core wholesale.)
    for module in breakdown:
        assert module.code > 40, f"{module.name} looks like a stub"

    ratio = PAPER_COQ_LOC["six scheme instantiations"] / PAPER_COQ_LOC[
        "adore total"
    ]
    our_ratio = schemes.code / core.code
    report(
        "",
        f"schemes/core ratio: paper {ratio:.3f} (Coq), reproduction "
        f"{our_ratio:.3f} (Python)",
    )
