"""Differential-harness throughput: states/second per scheme (ISSUE 9).

Runs the harness's intact cell for every registered scenario on one
identical budget (the smoke intact budget, exhaustive bfs so each
scheme's state count is a schedule-class invariant rather than a
search-order artifact) and records per-scheme states/second.

The gated metric is the **logless overhead ratio**: Raft single-node
and MongoDB logless explore the *same* reachable-state space intact
(the Q1/Q2 gates only bite once R2/R3 are ablated), so the ratio of
their within-run throughputs isolates the cost of the richer
``LoglessConfig`` representation -- (version, term, members) tuples,
coercion, and the gated candidate generator -- independent of the
runner's hardware.  Per-scheme absolute states/second land as warn
metrics to track the trajectory.

Each scheme is measured over CPU time (``time.process_time``), best of
``REPEATS`` interleaved rounds, after one untimed warm-up, so a noisy
neighbour during a single run cannot swing the gate.

Results land in ``BENCH_differential.json`` via ``bench_json``.
"""

import time

from repro.mc.differential import SMOKE_BUDGETS, default_scenarios, explorer_for

#: One identical budget for every scheme: the smoke intact budget.
BUDGET = SMOKE_BUDGETS["intact"]
MAX_STATES = 50_000
REPEATS = 2

#: The intact state spaces raft and logless explore are identical, so
#: their throughput ratio is a pure representation-overhead measure.
#: 3.0 is a generous ceiling; the committed baseline tracks the real
#: value and compare.py gates on 20% drift from it.
OVERHEAD_CEILING = 3.0


def _measure(scenario):
    explorer = explorer_for(
        scenario, "intact", budget=BUDGET, max_states=MAX_STATES,
        strategy="bfs",
    )
    cpu_started = time.process_time()
    wall_started = time.monotonic()
    result = explorer.run()
    wall = time.monotonic() - wall_started
    cpu = time.process_time() - cpu_started
    assert result.safe, f"{scenario.name} violated intact on the smoke budget"
    assert result.exhausted, f"{scenario.name} truncated at {MAX_STATES}"
    return {
        "states": result.states_visited,
        "transitions": result.transitions,
        "cpu_seconds": cpu,
        "elapsed_seconds": wall,
        "states_per_second": result.states_visited / cpu if cpu else 0.0,
    }


def test_differential_throughput(report, bench_json):
    scenarios = default_scenarios()
    _measure(scenarios[0])  # warm-up: intern tables, imports, caches

    rounds = {scenario.name: [] for scenario in scenarios}
    for _ in range(REPEATS):  # interleaved so load drift hits all schemes
        for scenario in scenarios:
            rounds[scenario.name].append(_measure(scenario))

    per_scheme = {
        name: max(runs, key=lambda r: r["states_per_second"])
        for name, runs in rounds.items()
    }
    for name, runs in rounds.items():
        for run in runs[1:]:
            assert run["states"] == runs[0]["states"], (
                f"{name}: bfs state count varied across repeats"
            )

    raft = per_scheme["raft-single-node"]
    logless = per_scheme["mongo-logless"]
    # Same budget, same universe, same schedule class: the intact state
    # spaces coincide exactly (hardware-independent).
    assert logless["states"] == raft["states"]
    overhead = raft["states_per_second"] / logless["states_per_second"]

    lines = [
        "",
        "Differential harness throughput (intact cell, identical budget, bfs)",
        f"budget {BUDGET}, best of {REPEATS} interleaved rounds over CPU time",
        f"{'scheme':<22} {'states':>7} {'st/s':>9} {'cpu s':>7}",
    ]
    for name, row in per_scheme.items():
        lines.append(
            f"{name:<22} {row['states']:>7} "
            f"{row['states_per_second']:>9,.0f} {row['cpu_seconds']:>7.2f}"
        )
    lines.append(f"logless overhead ratio (raft st/s / logless st/s): "
                 f"{overhead:.2f}")
    report(*lines)

    bench_json({
        "budget": {
            "pulls": BUDGET.pulls, "invokes": BUDGET.invokes,
            "reconfigs": BUDGET.reconfigs, "pushes": BUDGET.pushes,
        },
        "max_states": MAX_STATES,
        "repeats": REPEATS,
        "per_scheme": per_scheme,
        "logless_overhead_ratio": overhead,
    })

    assert overhead <= OVERHEAD_CEILING, (
        f"LoglessConfig costs {overhead:.2f}x raft's frozenset configs "
        f"on the identical intact state space (ceiling: {OVERHEAD_CEILING}x)"
    )
