"""Experiment E2 (paper Fig. 4 / Fig. 12): the single-node membership bug.

The paper's motivating counterexample: Raft's original single-node
membership change algorithm (no R3) lets two leaders commit with
disjoint quorums.  This benchmark regenerates the behaviour at both
abstraction levels the paper uses, plus the automated rediscovery:

* Adore model (Fig. 12 cache trees) -- scripted oracle;
* network-based Raft (Fig. 4 message schedule) -- asynchronous spec;
* bounded model checker with R3 ablated -- finds a depth-8 violation of
  the same shape with no scripted guidance;
* the same schedule class with R3 on -- exhaustively SAFE.
"""

from repro.analysis import render_table
from repro.core import check_replicated_state_safety, rdist
from repro.core.figures import fig4_blocked_machine, fig4_unsafe_machine
from repro.raft import run_buggy, run_fixed

from conftest import full_scale


def run_both_levels():
    adore_unsafe, labels = fig4_unsafe_machine()
    adore_blocked, denied = fig4_blocked_machine()
    net_unsafe = run_buggy()
    net_fixed = run_fixed()
    return adore_unsafe, labels, denied, net_unsafe, net_fixed


def test_fig4_bug_reproduction(benchmark, report, bench_json):
    adore_unsafe, labels, denied, net_unsafe, net_fixed = benchmark.pedantic(
        run_both_levels, rounds=1, iterations=1
    )

    tree = adore_unsafe.state.tree
    adore_violations = check_replicated_state_safety(tree)
    q_s2 = sorted(tree.cache(labels["C2"]).voters)
    q_s1 = sorted(tree.cache(labels["C3"]).voters)

    rows = [
        (
            "Adore model (Fig. 12)",
            "no R3",
            "SAFETY VIOLATED" if adore_violations else "safe",
            f"disjoint commit quorums {q_s2} / {q_s1}, "
            f"rdist={rdist(tree, labels['C2'], labels['C3'])}",
        ),
        (
            "Adore model (Fig. 12)",
            "R3 on",
            "blocked",
            f"first reconfig denied: {denied.reason}",
        ),
        (
            "network Raft (Fig. 4)",
            "no R3",
            "SAFETY VIOLATED" if net_unsafe.violated else "safe",
            f"{len(net_unsafe.system.leaders())} concurrent leaders, "
            f"{len(net_unsafe.safety_violations)} divergent prefix pairs",
        ),
        (
            "network Raft (Fig. 4)",
            "R3 on",
            "blocked",
            net_fixed.reconfig_results[0],
        ),
    ]
    report(
        "",
        "=" * 72,
        "E2 / Fig. 4+12 -- Raft's single-node membership change bug",
        "=" * 72,
        render_table(["level", "variant", "outcome", "evidence"], rows),
        "",
        "final Adore cache tree (no R3):",
        tree.render(),
    )

    bench_json({
        "adore_violations": len(adore_violations),
        "disjoint_quorums": [q_s2, q_s1],
        "net_unsafe_leaders": len(net_unsafe.system.leaders()),
        "r3_denial": denied.reason,
        "net_fixed_violated": net_fixed.violated,
    })

    # Paper claims, as assertions.
    assert len(adore_violations) == 1
    assert not set(q_s1) & set(q_s2)
    assert denied.reason == "r3-denied"
    assert net_unsafe.violated
    assert not net_fixed.violated
    assert net_fixed.reconfig_results == ["S1 removes S4: r3-denied"]


def test_fig4_automated_rediscovery(benchmark, report, bench_json):
    """The model checker finds the violation with zero guidance."""
    from repro.mc import ablate_r3

    result = benchmark.pedantic(ablate_r3, rounds=1, iterations=1)
    assert not result.safe
    violation = result.violations[0]
    bench_json({
        "states_explored": result.states_visited,
        "schedule_depth": len(violation.trace),
        "elapsed_s": result.elapsed_seconds,
    })
    report(
        "",
        "model checker, R3 ablated (guided search, safety invariant only):",
        "  " + result.summary(),
        "  schedule found:",
        *(
            f"    {i + 1}. {op}({nid}) {detail}"
            for i, (op, nid, detail) in enumerate(violation.trace)
        ),
    )
    assert len(violation.trace) == 8
    ops = [op for op, _, _ in violation.trace]
    assert ops.count("reconfig") == 2
    assert ops.count("push") == 2


def test_fig4_schedule_class_safe_with_r3(benchmark, report, bench_json):
    """Exhaustive BFS over the same schedule class, R3 on: SAFE."""
    from repro.mc import FIG4_BUDGET, FIG4_NODES, Explorer
    from repro.schemes import RaftSingleNodeScheme

    def verify():
        return Explorer(
            RaftSingleNodeScheme(),
            FIG4_NODES,
            callers=[1, 2],
            budget=FIG4_BUDGET,
            quorum_pulls_only=True,
            minimal_quorums_only=not full_scale(),
            invariants=["safety"],
        ).run()

    result = benchmark.pedantic(verify, rounds=1, iterations=1)
    bench_json({
        "states_explored": result.states_visited,
        "safe": result.safe,
        "exhausted": result.exhausted,
    })
    report(
        "",
        "same schedule class with R3 enforced:",
        "  " + result.summary(),
    )
    assert result.safe
