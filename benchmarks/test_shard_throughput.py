"""Experiment E12: what does shard routing cost on the client path?

PR 8 put a hash-ring router (:mod:`repro.shard`) in front of the
``repro.net`` client: every operation now hashes its key, snapshots
the routing table, picks the owning group, and stamps the request with
the table version so a stale route is refused instead of misapplied.
All of that is client-side bookkeeping -- none of it should show up as
meaningful latency against a real socket round trip.

The gate is a **within-run ratio** on one machine: the same blocking
workload is driven against the *same* 3-node group through a raw
:class:`~repro.net.client.NetClient` and through a
:class:`~repro.shard.client.ShardClient` over a degenerate one-group
table (so both paths hit identical servers and the difference is pure
routing overhead).  Throughput against a live leader drifts with
event-loop tick alignment and log growth, so the two modes are
measured **paired**: small alternating chunks on long-lived clients,
order flipped every round, total time per mode summed.  Any drift
lands on both sides of the ratio.  The ratio (sharded time / raw
time) must stay <= 1.15x.

Results land in ``BENCH_shard_throughput.json``; CI's bench-gate job
diffs the ratio against ``benchmarks/baselines/`` via
``benchmarks/compare.py``.
"""

import time

from repro.runtime.linearize import check_history
from repro.shard import ShardedCluster

from conftest import full_scale

#: Paired measurement: ROUNDS alternating chunks of CHUNK ops per
#: mode (x3 rounds under REPRO_FULL=1).
CHUNK = 25
ROUNDS = 16 * (3 if full_scale() else 1)
OPS = CHUNK * ROUNDS
KEYS = [f"k{i}" for i in range(16)]
#: The PR 8 acceptance bar: routing must cost <= 15% end to end.
OVERHEAD_LIMIT = 1.15


def _drive(client, ops: int, base: int = 0) -> float:
    """The shared workload: alternating put/get over a small keyset.
    Returns elapsed seconds."""
    started = time.perf_counter()
    for i in range(base, base + ops):
        key = KEYS[i % len(KEYS)]
        if i % 2 == 0:
            client.put(key, i)
        else:
            client.get(key)
    return time.perf_counter() - started


def test_shard_routing_overhead(report, bench_json):
    with ShardedCluster(groups=1, nodes_per_group=3, seed=7) as sharded:
        sharded.wait_for_leader(1)
        def raw_factory():
            return sharded.clusters[1].client(
                client_id="bench-raw", total_timeout_s=30.0
            )

        def shard_factory():
            return sharded.client(
                client_id="bench-shard", total_timeout_s=30.0
            )

        raw_client = raw_factory()
        shard_client = shard_factory()
        # Warm both paths (connections, leader discovery, allocator).
        _drive(raw_client, 30)
        _drive(shard_client, 30)

        def paired_session():
            raw_total = shard_total = 0.0
            for round_no in range(ROUNDS):
                base = round_no * CHUNK
                pair = [
                    ("raw", raw_client), ("shard", shard_client)
                ] if round_no % 2 == 0 else [
                    ("shard", shard_client), ("raw", raw_client)
                ]
                for label, client in pair:
                    elapsed = _drive(client, CHUNK, base=base)
                    if label == "raw":
                        raw_total += elapsed
                    else:
                        shard_total += elapsed
            return raw_total, shard_total

        # Two sessions, best ratio: one scheduler hiccup inside a
        # chunk cannot fail the gate on its own.
        sessions = [paired_session(), paired_session()]
        raw_s, shard_s = min(sessions, key=lambda rs: rs[1] / rs[0])
        ratio = shard_s / raw_s
        raw_ops = OPS / raw_s
        shard_ops = OPS / shard_s

        # The degenerate table never refuses, so routing never retried;
        # and the routed history is still linearizable.
        assert shard_client.reroutes == 0
        lin = check_history(shard_client.history)
        assert lin.ok, lin.describe()

        report(
            "",
            "E12: shard routing overhead (same group, same machine)",
            f"  raw NetClient   : {raw_ops:9.0f} ops/s  ({raw_s:.3f}s)",
            f"  ShardClient (1g): {shard_ops:9.0f} ops/s  ({shard_s:.3f}s)",
            f"  overhead ratio  : {ratio:.3f}x  (gate <= {OVERHEAD_LIMIT}x)",
        )
        bench_json({
            "ops": OPS,
            "raw": {"ops_per_s": round(raw_ops, 1),
                    "elapsed_s": round(raw_s, 4)},
            "sharded": {"ops_per_s": round(shard_ops, 1),
                        "elapsed_s": round(shard_s, 4)},
            "overhead_ratio": round(ratio, 4),
        })
        raw_client.close()
        shard_client.close()
        assert ratio <= OVERHEAD_LIMIT, (
            f"shard routing overhead {ratio:.3f}x exceeds "
            f"{OVERHEAD_LIMIT}x (raw {raw_s:.3f}s vs sharded {shard_s:.3f}s)"
        )
