"""Bounded-memory model checking: throughput under a fixed RSS cap (ISSUE 10).

Runs the full Fig. 4 intact verification twice -- once unbounded in
RAM, once inside an ``RLIMIT_AS`` address-space cap with the bounded
cache policy (tiered eviction) plus the disk-spilled frontier/visited
set -- and gates on the ratio of their states/second.

Measurement protocol (same as ``test_mc_throughput``):

* Each run happens in a fresh forked child, so ``ru_maxrss`` is a
  clean per-run high-water mark and the rlimit applies only to that
  child.
* The ratio uses **CPU time** (``time.process_time``), so a noisy CI
  neighbour cannot swing it; wall-clock is reported alongside.
* Runs are interleaved (unbounded/bounded/unbounded/bounded) and each
  mode is scored by its best run.

Acceptance: the bounded run, capped well below the unbounded peak RSS
(256 MiB vs ~350 MiB observed), must sustain >= 0.8x the unbounded
states/second, with exact parity on the verification answer.

Results land in ``BENCH_bounded_mc.json`` via ``bench_json``.
"""

import multiprocessing
import resource
import sys
import tempfile
import time

from repro.mc.ablations import verify_intact_explorer

#: The fixed address-space cap for the bounded run.  The unbounded
#: Fig. 4 intact run peaks around 350 MiB; 256 MiB forces the bounded
#: engine to actually evict and spill (it peaks under ~200 MiB).
LIMIT_MB = 256
#: Intern-table cap and frontier RAM window sized for LIMIT_MB: small
#: enough that eviction fires several times per run, large enough that
#: recomputation and spill traffic stay off the critical path.
TREE_CAP = 32_768
SPILL_WINDOW = 32_768

THROUGHPUT_FLOOR = 0.8


def _run_mode(bounded, conn):
    if bounded:
        soft = LIMIT_MB * 1024 * 1024
        _, hard = resource.getrlimit(resource.RLIMIT_AS)
        resource.setrlimit(resource.RLIMIT_AS, (soft, hard))

    from repro.core import cachemgr

    flushes = 0
    with tempfile.TemporaryDirectory(prefix="bench-bounded-mc-") as spill_dir:
        if bounded:
            explorer = verify_intact_explorer(
                spill_dir=spill_dir, spill_window=SPILL_WINDOW
            )
        else:
            explorer = verify_intact_explorer()
        wall_started = time.monotonic()
        cpu_started = time.process_time()
        if bounded:
            with cachemgr.bounded(
                tree_cap=TREE_CAP, cache_cap=TREE_CAP * 2,
                wipe=cachemgr.WIPE_SUBNODES,
            ):
                result = explorer.run()
                flushes = cachemgr.stats()["tree_interns"]["flushes"]
        else:
            result = explorer.run()
        cpu = time.process_time() - cpu_started
        wall = time.monotonic() - wall_started
    first = None
    if result.violations:
        violation = result.violations[0]
        first = (
            tuple(repr(op) for op in violation.trace),
            tuple(violation.report.all_violations()),
        )
    conn.send({
        "states": result.states_visited,
        "transitions": result.transitions,
        "violations": len(result.violations),
        "first_violation": first,
        "exhausted": result.exhausted,
        "elapsed_seconds": wall,
        "cpu_seconds": cpu,
        "states_per_second": result.states_visited / cpu if cpu else 0.0,
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "cache_flushes": flushes,
    })
    conn.close()


def measure(bounded):
    """Run one mode cold in a fresh forked child; return its metrics."""
    context = multiprocessing.get_context("fork")
    parent_conn, child_conn = context.Pipe(duplex=False)
    process = context.Process(target=_run_mode, args=(bounded, child_conn))
    process.start()
    child_conn.close()
    payload = parent_conn.recv()
    process.join()
    assert process.exitcode == 0
    return payload


def parity_fields(payload):
    return {
        key: payload[key]
        for key in ("states", "transitions", "violations", "first_violation",
                    "exhausted")
    }


def best_of(payloads):
    return max(payloads, key=lambda p: p["states_per_second"])


def test_bounded_vs_unbounded(report, bench_json):
    if sys.platform == "win32":
        import pytest

        pytest.skip("benchmark requires fork and RLIMIT_AS")

    unbounded_runs, bounded_runs = [], []
    for _ in range(2):  # interleaved: unbounded, bounded, unbounded, bounded
        unbounded_runs.append(measure(bounded=False))
        bounded_runs.append(measure(bounded=True))

    for run in unbounded_runs[1:] + bounded_runs:
        assert parity_fields(unbounded_runs[0]) == parity_fields(run), (
            "bounding memory changed the verification answer"
        )
    for run in bounded_runs:
        assert run["cache_flushes"] > 0, (
            "cap never hit: the bounded run is not exercising eviction"
        )
        assert run["peak_rss_kb"] <= LIMIT_MB * 1024, (
            f"bounded run peaked at {run['peak_rss_kb']} KB, above the "
            f"{LIMIT_MB} MiB address-space cap"
        )

    unbounded, bounded = best_of(unbounded_runs), best_of(bounded_runs)
    throughput_ratio = (
        bounded["states_per_second"] / unbounded["states_per_second"]
        if unbounded["states_per_second"]
        else float("inf")
    )
    row = {
        "limit_mb": LIMIT_MB,
        "tree_cap": TREE_CAP,
        "spill_window": SPILL_WINDOW,
        "runs_per_mode": len(bounded_runs),
        "states": bounded["states"],
        "transitions": bounded["transitions"],
        "unbounded": {
            "elapsed_seconds": unbounded["elapsed_seconds"],
            "cpu_seconds": unbounded["cpu_seconds"],
            "states_per_second": unbounded["states_per_second"],
            "peak_rss_kb": unbounded["peak_rss_kb"],
        },
        "bounded": {
            "elapsed_seconds": bounded["elapsed_seconds"],
            "cpu_seconds": bounded["cpu_seconds"],
            "states_per_second": bounded["states_per_second"],
            "peak_rss_kb": bounded["peak_rss_kb"],
            "cache_flushes": bounded["cache_flushes"],
        },
        "throughput_ratio": throughput_ratio,
    }

    report(
        "",
        "Bounded-memory model checking: Fig. 4 intact, "
        f"{LIMIT_MB} MiB RLIMIT_AS cap",
        "(states/second over CPU time, best of the interleaved runs)",
        f"{'mode':>10} {'states':>8} {'st/s':>10} {'peak RSS':>10} "
        f"{'flushes':>8}",
        f"{'unbounded':>10} {unbounded['states']:>8} "
        f"{unbounded['states_per_second']:>10,.0f} "
        f"{unbounded['peak_rss_kb'] / 1024:>8.0f}Mi {'-':>8}",
        f"{'bounded':>10} {bounded['states']:>8} "
        f"{bounded['states_per_second']:>10,.0f} "
        f"{bounded['peak_rss_kb'] / 1024:>8.0f}Mi "
        f"{bounded['cache_flushes']:>8}",
        f"throughput ratio (bounded/unbounded): {throughput_ratio:.2f}x",
    )
    bench_json(row)

    # The acceptance bar: a fixed cap well under the unbounded peak
    # costs at most 20% of throughput.
    assert throughput_ratio >= THROUGHPUT_FLOOR, (
        f"bounded engine sustains only {throughput_ratio:.2f}x the "
        f"unbounded states/second (floor: {THROUGHPUT_FLOOR}x)"
    )
