"""Experiment E8 (extension; paper Section 8's sketches, executed).

Section 8 sketches how Adore could model two other reconfiguration
families: stop-the-world (Stoppable Paxos / WormSpace / VR) by deleting
off-branch caches when an RCache commits, and Lamport's α-delayed
scheme by deferring configurations until committed and bounding
in-flight speculation.  Both sketches are implemented in
``repro.core.extensions``; this experiment model-checks the
stop-the-world variant at the same bounds as the hot model and
contrasts the tree sizes (stop-the-world physically deletes
speculation), and exercises the α machine's two behavioural changes.
"""

from repro.analysis import render_table
from repro.core import PullOk, PushOk, ScriptedOracle
from repro.core.extensions import AlphaReconfigMachine, apply_push_stop_world
from repro.mc import Explorer, OpBudget
from repro.schemes import RaftSingleNodeScheme

NODES = frozenset({1, 2, 3})
SCHEME = RaftSingleNodeScheme()
BUDGET = OpBudget(pulls=2, invokes=1, reconfigs=1, pushes=2)
F = frozenset


def check_both():
    hot = Explorer(SCHEME, NODES, budget=BUDGET).run()
    stop = Explorer(
        SCHEME, NODES, budget=BUDGET, push_step=apply_push_stop_world
    ).run()
    return hot, stop


def test_stop_the_world_model_checked(benchmark, report, bench_json):
    hot, stop = benchmark.pedantic(check_both, rounds=1, iterations=1)
    bench_json({
        "hot": {"states": hot.states_visited, "transitions": hot.transitions,
                "safe": hot.safe, "exhausted": hot.exhausted},
        "stop_world": {"states": stop.states_visited,
                       "transitions": stop.transitions,
                       "safe": stop.safe, "exhausted": stop.exhausted},
    })
    report(
        "",
        "=" * 72,
        "E8 (extension) / Section 8 -- stop-the-world reconfiguration",
        "=" * 72,
        render_table(
            ["variant", "states", "transitions", "coverage", "result"],
            [
                ("hot (insertBtw, paper default)", hot.states_visited,
                 hot.transitions,
                 "exhaustive" if hot.exhausted else "truncated",
                 "SAFE" if hot.safe else "VIOLATED"),
                ("stop-the-world (prune on commit)", stop.states_visited,
                 stop.transitions,
                 "exhaustive" if stop.exhausted else "truncated",
                 "SAFE" if stop.safe else "VIOLATED"),
            ],
        ),
        "stop-the-world reaches fewer states: committing a "
        "reconfiguration deletes all off-branch speculation, the clean "
        "break the paper describes.",
    )
    assert hot.safe and stop.safe
    assert hot.exhausted and stop.exhausted
    assert stop.states_visited <= hot.states_visited


def test_alpha_machine_behaviour(benchmark, report, bench_json):
    """The two α-sketch requirements, demonstrated on one schedule."""

    def run():
        oracle = ScriptedOracle([
            PullOk(group=F({1, 2, 3}), time=1),
            PushOk(group=F({1, 2, 3}), target=2),
            PullOk(group=F({2, 3}), time=2),
        ])
        machine = AlphaReconfigMachine.create(
            NODES, SCHEME, oracle, alpha=2
        )
        machine.pull(1)
        machine.invoke(1, "m1")
        machine.push(1)
        machine.reconfig(1, F({1, 2}))            # uncommitted: inert
        blocked = machine.invoke(1, "m2")          # window: 1 slot left
        full = machine.invoke(1, "m3")             # window full
        election = machine.pull(2)                 # quorum vs *effective* cfg
        return machine, blocked, full, election

    machine, blocked, full, election = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    bench_json({
        "alpha": 2,
        "blocked_reason": full.reason,
        "election_ok": election.ok,
        "election_config": sorted(
            machine.state.tree.cache(election.new_cid).conf
        ),
    })
    rows = [
        ("uncommitted RCache is inert",
         f"post-RCache MCache carries config "
         f"{sorted(machine.state.tree.cache(blocked.new_cid).conf)} "
         f"(not the pending {sorted(F({1, 2}))})"),
        ("α bounds speculation",
         f"third in-flight command refused: {full.reason}"),
        ("elections use committed config",
         f"new ECache config "
         f"{sorted(machine.state.tree.cache(election.new_cid).conf)}; "
         f"quorum {{2,3}} judged against it"),
    ]
    report(
        "",
        "E8 / Lamport α-reconfiguration (α = 2):",
        render_table(["sketch requirement", "observed"], rows),
    )
    assert machine.state.tree.cache(blocked.new_cid).conf == NODES
    assert full.reason == "alpha-window-full"
    assert election.ok
    assert machine.state.tree.cache(election.new_cid).conf == NODES
