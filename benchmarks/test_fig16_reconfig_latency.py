"""Experiment E1 (paper Fig. 16): Raft latency under reconfiguration.

Paper setup: the extracted OCaml Raft on EC2 m4.xlarge processes client
requests while the membership goes 5 → 4 → 3 → 4 → 5 nodes, changing
once every 1000 requests; the figure plots per-request max/mean/min
latency over eight runs.

Reproduction: the same specification handlers on the discrete-event
simulator, identical workload shape (5 x 1000 requests, reconfiguration
at each boundary, 8 seeded runs).  Absolute numbers are simulated
milliseconds, not EC2 milliseconds; the claims reproduced are the
*shape*:

* steady-state latency is flat across configuration sizes;
* each reconfiguration adds a small delay;
* growing the cluster is costlier than shrinking it (full-log catch-up
  of the re-added node);
* the reconfiguration delay stays within the range of the sporadic
  latency spikes visible elsewhere in the series.
"""

import statistics

from repro.analysis import aggregate_runs, render_series, render_table, summarize
from repro.runtime import Fig16Config, run_fig16_experiment

RUNS = 8


def run_experiment():
    return run_fig16_experiment(runs=RUNS, config=Fig16Config())


def test_fig16_reconfiguration_latency(benchmark, report, bench_json):
    runs = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    maxima, means, minima = aggregate_runs([r.latencies_ms for r in runs])
    reconfig_indices = runs[0].reconfig_indices
    phase_sizes = runs[0].phase_sizes

    report(
        "",
        "=" * 72,
        "E1 / Fig. 16 -- OCaml Raft performance under reconfiguration",
        f"({RUNS} runs, 1000 requests per phase, phases "
        f"{'->'.join(f'({n})' for n in phase_sizes)})",
        "=" * 72,
        render_series(
            means,
            markers=reconfig_indices,
            title="mean latency per request (simulated ms)",
        ),
        "",
        render_series(
            maxima,
            markers=reconfig_indices,
            title="max latency per request (simulated ms)",
        ),
    )

    # Per-phase summary table (the figure's (n) annotations).
    rows = []
    boundaries = [0] + [i + 1 for i in reconfig_indices] + [len(means)]
    for phase, size in enumerate(phase_sizes):
        lo, hi = boundaries[phase], boundaries[phase + 1]
        segment = means[lo:hi]
        stats = summarize(segment)
        rows.append((f"phase {phase} ({size} nodes)",) + stats.row())
    report(
        "",
        render_table(
            ["phase", "requests", "mean", "min", "p50", "p99", "max"], rows
        ),
    )

    reconfig_means = [
        statistics.mean(r.reconfig_latencies_ms[i] for r in runs)
        for i in range(len(reconfig_indices))
    ]
    shrink = reconfig_means[:2]
    grow = reconfig_means[2:]
    report(
        "",
        render_table(
            ["reconfiguration", "mean latency (ms)"],
            [
                ("5 -> 4 (shrink)", round(shrink[0], 3)),
                ("4 -> 3 (shrink)", round(shrink[1], 3)),
                ("3 -> 4 (grow)", round(grow[0], 3)),
                ("4 -> 5 (grow)", round(grow[1], 3)),
            ],
        ),
    )

    # --- Shape claims (the paper's qualitative findings) ---

    # 1. Steady state is flat: per-phase medians within 50% of each other.
    phase_medians = [
        statistics.median(means[boundaries[i] : boundaries[i + 1]])
        for i in range(len(phase_sizes))
    ]
    assert max(phase_medians) < 1.5 * min(phase_medians), phase_medians

    # 2. Growing costs more than shrinking (log catch-up).
    assert statistics.mean(grow) > statistics.mean(shrink)

    # 3. Reconfiguration delay is within the sporadic-spike range: the
    #    worst reconfiguration is no worse than the worst ordinary
    #    request spike seen across runs.
    ordinary_max = max(
        lat
        for run in runs
        for i, lat in enumerate(run.latencies_ms)
        if i not in run.reconfig_indices
    )
    assert max(reconfig_means) <= ordinary_max, (
        max(reconfig_means),
        ordinary_max,
    )

    # 4. Safety held throughout (checked inside the workload runner) and
    #    every run completed all requests.
    assert all(len(r.latencies_ms) == 5004 for r in runs)

    bench_json({
        "runs": RUNS,
        "phase_sizes": list(phase_sizes),
        "phase_medians_ms": phase_medians,
        "reconfig_means_ms": {
            "5->4": shrink[0], "4->3": shrink[1],
            "3->4": grow[0], "4->5": grow[1],
        },
        "grow_mean_ms": statistics.mean(grow),
        "shrink_mean_ms": statistics.mean(shrink),
        "ordinary_spike_max_ms": ordinary_max,
    })
    report(
        "",
        f"shape checks: flat steady state {['%.3f' % m for m in phase_medians]}, "
        f"grow ({statistics.mean(grow):.3f} ms) > shrink "
        f"({statistics.mean(shrink):.3f} ms), "
        f"reconfig max {max(reconfig_means):.3f} ms <= ordinary spike max "
        f"{ordinary_max:.3f} ms",
    )
