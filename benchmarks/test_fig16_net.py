"""Experiment E1-net (paper Fig. 16): the same trajectory, real sockets.

Where ``test_fig16_reconfig_latency`` replays the paper's workload on
the discrete-event simulator, this experiment runs it on
:mod:`repro.net`: five OS processes speaking framed TCP on localhost,
the membership walking 5 -> 4 -> 3 -> 4 -> 5 while a client drives
requests, **plus a SIGKILL of the leader** in the middle (3-node)
phase -- the paper's operational story end to end.  Latencies are real
wall-clock milliseconds measured at the client.

The claims reproduced are again the *shape*:

* steady-state latency is flat across configuration sizes;
* reconfiguration shows up as a latency spike at the phase boundary;
* growing the cluster is costlier than shrinking it -- a re-added
  node must catch up on every log entry it missed (shipped as one
  large delta frame), and after the leader kill the 3 -> 4 grow
  *blocks* on that catch-up, because the new four-member quorum needs
  the rejoined node's ack;
* the history -- recorded across reconfigurations and a leader kill --
  passes the Wing-Gong linearizability checker.
"""

import statistics
import time

from repro.analysis import render_series, render_table, summarize
from repro.net.client import ClientTimeout
from repro.net.procs import LocalCluster
from repro.runtime.linearize import check_history

from conftest import full_scale

NIDS = (1, 2, 3, 4, 5)
#: Requests per phase (x3 under REPRO_FULL=1).
OPS_PER_PHASE = 100
#: Kill the leader this many requests into the 3-node phase.
KILL_AFTER = 30
#: Value payload size: entries must weigh something for a rejoining
#: node's catch-up (one delta frame carrying every missed entry) to be
#: a real cost, as it is in the paper's full-log transfers.
VALUE_BYTES = 16384
#: A short heartbeat keeps the commit-propagation quantum (settling
#: waits for followers' commit_len, which advances one heartbeat after
#: acks) well below the catch-up cost being measured.
HEARTBEAT_MS = 5.0


def _now_ms() -> float:
    return time.monotonic() * 1000.0


def _settle_ms(cluster, client, members, deadline_s: float = 30.0) -> float:
    """Time until every live member matches the leader's log and commit
    lengths -- i.e. until the new configuration is fully caught up.
    (No traffic runs while settling, so the lengths are stable.)"""
    started = time.monotonic()
    while time.monotonic() - started < deadline_s:
        stats = [
            status
            for nid in sorted(members)
            if cluster.handles[nid].alive
            and (status := client.status(nid)) is not None
        ]
        leaders = [s for s in stats if s.role == "leader"]
        if leaders and all(
            s.log_len == leaders[0].log_len
            and s.commit_len == leaders[0].commit_len
            for s in stats
        ):
            return (time.monotonic() - started) * 1000.0
        time.sleep(0.005)
    raise AssertionError(f"members {sorted(members)} never settled")


def run_experiment():
    scale = 3 if full_scale() else 1
    ops = OPS_PER_PHASE * scale
    out = {
        "latencies_ms": [],      # one entry per ordinary request
        "phase_slices": [],      # (start, end) into latencies_ms
        "reconfigs": [],         # {label, request_ms, settle_ms}
        "failover_ms": None,
        "unknown_ops": 0,
    }
    with LocalCluster(
        nids=NIDS,
        seed=42,
        heartbeat_ms=HEARTBEAT_MS,
        election_timeout_min_ms=8 * HEARTBEAT_MS,
        election_timeout_max_ms=16 * HEARTBEAT_MS,
    ) as cluster:
        first_leader = cluster.wait_for_leader()
        # The trajectory removes followers (the paper's operator does
        # not decommission the node serving traffic): v1 is out for
        # three phases, v2 for one, so the two grows re-add nodes with
        # very different catch-up debts.
        v1, v2 = sorted(n for n in NIDS if n != first_leader)[-2:]
        all_nodes = frozenset(NIDS)
        phases = [
            all_nodes,
            all_nodes - {v1},
            all_nodes - {v1, v2},
            all_nodes - {v1},
            all_nodes,
        ]
        with cluster.client(
            client_id="fig16", total_timeout_s=30.0
        ) as client:
            killed = None
            down_at = None
            for phase, members in enumerate(phases):
                if phase > 0:
                    prev = phases[phase - 1]
                    label = (
                        f"{len(prev)} -> {len(members)} "
                        f"({'grow' if len(members) > len(prev) else 'shrink'})"
                    )
                    started = _now_ms()
                    assert client.reconfigure(members) is True
                    request_ms = _now_ms() - started
                    settle = _settle_ms(cluster, client, members)
                    out["reconfigs"].append({
                        "label": label,
                        "request_ms": request_ms,
                        "settle_ms": settle,
                    })
                begin = len(out["latencies_ms"])
                for i in range(ops):
                    if phase == 2 and i == KILL_AFTER and killed is None:
                        killed = cluster.wait_for_leader()
                        down_at = _now_ms()
                        cluster.kill(killed)
                    started = _now_ms()
                    try:
                        client.put(f"k{i % 7}", f"{i}:" + "x" * VALUE_BYTES)
                    except ClientTimeout:
                        out["unknown_ops"] += 1
                        continue
                    elapsed = _now_ms() - started
                    out["latencies_ms"].append(elapsed)
                    if down_at is not None and out["failover_ms"] is None:
                        out["failover_ms"] = _now_ms() - down_at
                out["phase_slices"].append(
                    (begin, len(out["latencies_ms"]))
                )
            out["phase_sizes"] = [len(m) for m in phases]
            out["retries"] = client.retries
            out["history"] = client.history
            out["verdict"] = check_history(client.history)
            # Cross-node safety: live nodes agree on committed prefixes.
            logs = {
                nid: entries
                for nid in cluster.nids
                if cluster.handles[nid].alive
                and (entries := client.committed_log(nid)) is not None
            }
            nids = sorted(logs)
            out["prefix_agreement"] = all(
                logs[a][: min(len(logs[a]), len(logs[b]))]
                == logs[b][: min(len(logs[a]), len(logs[b]))]
                for i, a in enumerate(nids)
                for b in nids[i + 1:]
            )
            out["killed"] = killed
    return out


def test_fig16_over_real_sockets(benchmark, report, bench_json):
    out = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    latencies = out["latencies_ms"]
    phase_medians = [
        statistics.median(latencies[lo:hi])
        for lo, hi in out["phase_slices"]
    ]
    grow = [r for r in out["reconfigs"] if "grow" in r["label"]]
    shrink = [r for r in out["reconfigs"] if "shrink" in r["label"]]
    grow_cost = statistics.mean(
        r["request_ms"] + r["settle_ms"] for r in grow
    )
    shrink_cost = statistics.mean(
        r["request_ms"] + r["settle_ms"] for r in shrink
    )
    steady_median = statistics.median(latencies)

    report(
        "",
        "=" * 72,
        "E1-net / Fig. 16 -- the trajectory on real TCP processes",
        f"({len(latencies)} requests over 5 phases "
        f"{'->'.join(f'({n})' for n in out['phase_sizes'])}; "
        f"leader S{out['killed']} SIGKILLed mid-run; wall-clock ms)",
        "=" * 72,
        render_series(
            latencies,
            markers=[hi - 1 for _, hi in out["phase_slices"][:-1]],
            title="client-observed latency per request (ms)",
        ),
        "",
        render_table(
            ["phase", "requests", "mean", "min", "p50", "p99", "max"],
            [
                (f"phase {i} ({out['phase_sizes'][i]} nodes)",)
                + summarize(latencies[lo:hi]).row()
                for i, (lo, hi) in enumerate(out["phase_slices"])
            ],
        ),
        "",
        render_table(
            ["reconfiguration", "request (ms)", "full catch-up (ms)"],
            [
                (r["label"], round(r["request_ms"], 2),
                 round(r["settle_ms"], 2))
                for r in out["reconfigs"]
            ],
        ),
        "",
        f"failover after SIGKILL: next request completed in "
        f"{out['failover_ms']:.0f} ms; {out['retries']} client retries, "
        f"{out['unknown_ops']} unknown outcomes",
        f"history: {out['verdict'].describe()}",
    )

    bench_json({
        "requests": len(latencies),
        "phase_sizes": out["phase_sizes"],
        "phase_medians_ms": phase_medians,
        "steady_median_ms": steady_median,
        "reconfigs": [
            {k: v for k, v in r.items()} for r in out["reconfigs"]
        ],
        "grow_cost_ms": grow_cost,
        "shrink_cost_ms": shrink_cost,
        "failover_ms": out["failover_ms"],
        "killed_leader": out["killed"],
        "retries": out["retries"],
        "unknown_ops": out["unknown_ops"],
        "linearizable": out["verdict"].ok,
        "checked_ops": out["verdict"].checked_ops,
        "prefix_agreement": out["prefix_agreement"],
    })

    # --- The paper's shape claims, on real sockets ---

    # 0. The workload actually ran: >= 500 completed client operations
    #    spanning four reconfigurations and one leader kill.
    assert len(latencies) + out["unknown_ops"] >= 500
    assert len(out["reconfigs"]) == 4 and out["killed"] is not None

    # 1. Steady state is flat-ish across configuration sizes (medians
    #    are robust to the failover spike; wall clocks are noisy, so
    #    the tolerance is loose).
    assert max(phase_medians) < 5 * min(phase_medians), phase_medians

    # 2. Reconfiguration is a visible spike: costlier than the median
    #    request.
    boundary_requests = [r["request_ms"] for r in out["reconfigs"]]
    assert statistics.mean(boundary_requests) > steady_median

    # 3. Growing costs more than shrinking: the re-added node's
    #    catch-up (one big delta frame + replay) is on the critical
    #    path, unlike any shrink.
    assert grow_cost > shrink_cost, (grow_cost, shrink_cost)

    # 4. Safety: the real-TCP history linearizes and live nodes agree
    #    on committed prefixes.
    assert out["verdict"].ok, out["verdict"].describe()
    assert out["prefix_agreement"]
