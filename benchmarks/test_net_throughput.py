"""Experiment E10: the production write path, measured end to end.

PR 6 turned :mod:`repro.net` from a correct-but-naive transport into a
production-shaped one: leader-side append batching (one log append +
one broadcast per event-loop tick instead of per request), pipelined
AppendEntries with a bounded in-flight window, ReadIndex reads that
skip the log entirely, and snapshot-based log compaction.  This
benchmark quantifies that work with a many-client load generator over
a real 3-node localhost cluster, run twice on the same machine:

* **baseline** -- the PR 4 semantics, restored via knobs
  (``batching=False, read_index=False, snapshot_threshold=0``):
  every request broadcasts individually through an unpipelined,
  uncoalesced outbox, every read is serialized through the log, and
  every read response folds the whole committed prefix;
* **optimized** -- the defaults: per-tick batching, pipelined sends,
  ReadIndex fast reads from the incrementally-applied store, and
  compaction under load.

The load generator is a single-threaded asyncio fan-out of
``N_CLIENTS`` logical clients (each with its own connection, identity,
and ``(client_id, seq)`` dedup ids), so client-side thread scheduling
does not pollute the measurement and the server sees genuinely
concurrent load.

The headline gate is the **speedup** (optimized / baseline ops/sec,
same hardware, same run), which must stay >= 3x.  Both runs record
client histories and must pass the Wing-Gong linearizability checker
-- the fast read path must be indistinguishable from the slow one.

Results land in ``BENCH_net_throughput.json`` (ops/sec, p99 latency,
log bytes shipped by the nodes, fast-read counts); CI's bench-gate job
diffs that file against ``benchmarks/baselines/`` via
``benchmarks/compare.py``.
"""

import asyncio
import random
import socket
import statistics
import time

from repro.net.client import merge_histories
from repro.net.procs import LocalCluster
from repro.net.wire import (
    ClientRequest,
    ClientResponse,
    ProtocolError,
    decode_message,
    encode_frame,
)
from repro.runtime.history import History
from repro.runtime.linearize import check_history

from conftest import full_scale

NIDS = (1, 2, 3)
#: Concurrent logical clients (single-threaded asyncio fan-out).
N_CLIENTS = 20
#: Operations per client (x3 under REPRO_FULL=1).  High enough that
#: the baseline's read-through-the-log behavior -- every read appends,
#: every response folds the whole committed prefix -- pays its real
#: cost, as it would in production.
OPS_PER_CLIENT = 45
#: Fraction of operations that are reads (ReadIndex's territory).
READ_FRACTION = 0.75
KEYS = [f"k{i}" for i in range(8)]
HEARTBEAT_MS = 10.0
#: Low enough that the optimized run actually compacts mid-load.
SNAPSHOT_THRESHOLD = 64
#: The PR 6 acceptance bar: optimized >= 3x baseline ops/sec.
SPEEDUP_TARGET = 3.0
PER_OP_DEADLINE_S = 30.0


def _now_ms() -> float:
    return time.monotonic() * 1000.0


def _percentile(samples, q: float) -> float:
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


async def _read_reply(reader):
    header = await reader.readexactly(4)
    return decode_message(await reader.readexactly(int.from_bytes(
        header, "big"
    )))


async def _drive_one(cid, addresses, leader_nid, ops, rng, results):
    """One logical client: a read-heavy mixed workload with at-most-once
    request ids, leader-hint redirects, and bounded retries."""
    history = History()
    latencies = []
    unknown = 0
    ordered = sorted(addresses)
    target = leader_nid
    reader = writer = None
    seq = 0

    async def connect():
        nonlocal reader, writer
        reader, writer = await asyncio.open_connection(*addresses[target])
        sock = writer.get_extra_info("socket")
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    def drop():
        nonlocal reader, writer
        if writer is not None:
            writer.close()
        reader = writer = None

    for i in range(ops):
        key = rng.choice(KEYS)
        if rng.random() < READ_FRACTION:
            op, value, command = "get", None, ("get", key)
        elif rng.random() < 0.5:
            value = rng.randrange(10_000)
            op, command = "put", ("put", key, value)
        else:
            value = rng.randrange(1, 5)
            op, command = "add", ("add", key, value)
        operation = history.invoke(cid, op, key, value, _now_ms())
        request = ClientRequest(client_id=cid, seq=seq, command=command)
        seq += 1
        started = time.monotonic()
        deadline = started + PER_OP_DEADLINE_S
        done = False
        while time.monotonic() < deadline:
            try:
                if writer is None:
                    await connect()
                writer.write(encode_frame(request))
                reply = await asyncio.wait_for(_read_reply(reader), 2.0)
            except (OSError, asyncio.TimeoutError, asyncio.IncompleteReadError,
                    ProtocolError):
                drop()
                target = ordered[(ordered.index(target) + 1) % len(ordered)]
                await asyncio.sleep(0.02)
                continue
            if (not isinstance(reply, ClientResponse)
                    or reply.seq != request.seq):
                drop()  # stale frame from an abandoned attempt
                continue
            if reply.ok:
                history.complete(operation, _now_ms(), reply.result)
                latencies.append((time.monotonic() - started) * 1000.0)
                done = True
                break
            if reply.error == "not-leader":
                drop()
                target = (
                    reply.leader_hint
                    if reply.leader_hint in addresses
                    else ordered[(ordered.index(target) + 1) % len(ordered)]
                )
                continue
            if reply.error == "retry":
                await asyncio.sleep(0.005)
                continue
            raise AssertionError(f"{command!r} refused: {reply.error}")
        if not done:
            unknown += 1
    drop()
    results.append((latencies, unknown, history))


def _cluster_totals(cluster, probe):
    """Sum the per-node wire/status counters across live nodes."""
    totals = {"bytes_sent": 0, "reads_fast": 0, "snapshots_installed": 0,
              "base_len": 0}
    for nid in cluster.nids:
        if not cluster.handles[nid].alive:
            continue
        status = probe.status(nid)
        if status is None:
            continue
        totals["bytes_sent"] += status.bytes_sent
        totals["reads_fast"] += status.reads_fast
        totals["snapshots_installed"] += status.snapshots_installed
        totals["base_len"] = max(totals["base_len"], status.base_len)
    return totals


def run_mode(label, *, batching, read_index, snapshot_threshold):
    scale = 3 if full_scale() else 1
    ops = OPS_PER_CLIENT * scale
    with LocalCluster(
        nids=NIDS,
        seed=13,
        heartbeat_ms=HEARTBEAT_MS,
        election_timeout_min_ms=8 * HEARTBEAT_MS,
        election_timeout_max_ms=16 * HEARTBEAT_MS,
        batching=batching,
        read_index=read_index,
        snapshot_threshold=snapshot_threshold,
    ) as cluster:
        leader = cluster.wait_for_leader()
        with cluster.client(client_id=f"probe-{label}") as probe:
            before = _cluster_totals(cluster, probe)
            results = []

            async def fan_out():
                await asyncio.gather(*[
                    _drive_one(
                        f"load-{label}-{cid}", cluster.addresses, leader,
                        ops, random.Random(1000 + cid), results,
                    )
                    for cid in range(N_CLIENTS)
                ])

            started = time.monotonic()
            asyncio.run(fan_out())
            wall_s = time.monotonic() - started
            after = _cluster_totals(cluster, probe)
        latencies = [ms for lats, _, _ in results for ms in lats]
        unknown = sum(u for _, u, _ in results)
        history = merge_histories(h for _, _, h in results)
        verdict = check_history(history)
    return {
        "label": label,
        "clients": N_CLIENTS,
        "ops_requested": N_CLIENTS * ops,
        "ops_completed": len(latencies),
        "unknown_ops": unknown,
        "wall_s": wall_s,
        "ops_per_s": len(latencies) / wall_s,
        "mean_ms": statistics.mean(latencies),
        "p50_ms": _percentile(latencies, 0.50),
        "p99_ms": _percentile(latencies, 0.99),
        "bytes_shipped": after["bytes_sent"] - before["bytes_sent"],
        "reads_fast": after["reads_fast"] - before["reads_fast"],
        "snapshots_installed": after["snapshots_installed"],
        "snapshot_base_len": after["base_len"],
        "linearizable": verdict.ok,
        "checked_ops": verdict.checked_ops,
    }


def run_experiment():
    return {
        "baseline": run_mode(
            "base", batching=False, read_index=False, snapshot_threshold=0
        ),
        "optimized": run_mode(
            "opt", batching=True, read_index=True,
            snapshot_threshold=SNAPSHOT_THRESHOLD,
        ),
    }


def test_net_throughput(benchmark, report, bench_json):
    out = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    base, opt = out["baseline"], out["optimized"]
    speedup = opt["ops_per_s"] / base["ops_per_s"]
    bytes_ratio = (
        opt["bytes_shipped"] / base["bytes_shipped"]
        if base["bytes_shipped"] else float("nan")
    )

    def row(mode):
        return (
            mode["label"],
            round(mode["ops_per_s"], 1),
            round(mode["p50_ms"], 2),
            round(mode["p99_ms"], 2),
            mode["bytes_shipped"],
            mode["reads_fast"],
            mode["unknown_ops"],
        )

    report(
        "",
        "=" * 72,
        "E10 -- production write path: batching + pipelining + ReadIndex",
        f"({N_CLIENTS} concurrent clients, "
        f"{base['ops_requested']} ops/mode, "
        f"{int(READ_FRACTION * 100)}% reads, 3 nodes on localhost TCP)",
        "=" * 72,
        f"  {'mode':8} {'ops/s':>8} {'p50 ms':>8} {'p99 ms':>8} "
        f"{'bytes':>10} {'fast rd':>8} {'unk':>4}",
        "  " + " ".join(str(v).rjust(w) for v, w in zip(
            row(base), (8, 8, 8, 8, 10, 8, 4))),
        "  " + " ".join(str(v).rjust(w) for v, w in zip(
            row(opt), (8, 8, 8, 8, 10, 8, 4))),
        "",
        f"  speedup: {speedup:.2f}x (target >= {SPEEDUP_TARGET:.1f}x); "
        f"bytes shipped: {bytes_ratio:.2f}x of baseline",
        f"  optimized compacted to base_len={opt['snapshot_base_len']}, "
        f"{opt['snapshots_installed']} snapshots installed, "
        f"{opt['reads_fast']} ReadIndex reads",
        f"  histories: baseline {'OK' if base['linearizable'] else 'FAIL'}"
        f" ({base['checked_ops']} ops), optimized "
        f"{'OK' if opt['linearizable'] else 'FAIL'}"
        f" ({opt['checked_ops']} ops)",
    )

    bench_json({
        "baseline": base,
        "optimized": opt,
        "speedup": speedup,
        "bytes_ratio": bytes_ratio,
        "speedup_target": SPEEDUP_TARGET,
    })

    # Both paths must be correct before either is fast: the recorded
    # histories linearize, and nearly every op completed.
    assert base["linearizable"] and opt["linearizable"]
    assert base["unknown_ops"] <= base["ops_requested"] * 0.02
    assert opt["unknown_ops"] <= opt["ops_requested"] * 0.02

    # The fast path actually engaged: ReadIndex served reads without
    # log appends, and compaction happened under load.
    assert opt["reads_fast"] > 0
    assert opt["snapshot_base_len"] > 0

    # The PR 6 acceptance bar: >= 3x ops/sec over the unbatched,
    # read-through-the-log baseline, on the same hardware in the same
    # run (so the comparison is hardware-independent).
    assert speedup >= SPEEDUP_TARGET, (
        f"speedup {speedup:.2f}x below the {SPEEDUP_TARGET:.1f}x target"
    )
