"""The live node's monitor-export overhead contract.

:class:`~repro.net.node.NetNode` grew two hooks for this subsystem:

* ``_after_progress`` starts with one ``_export_enabled`` test (the
  trace-export gate), and
* ``_deliver`` / ``_send_all`` start with one ``_blocked`` test (the
  admin partition fault the Fig. 4 schedule drives).

The promise mirrors DESIGN.md §9's obs contract: with no monitor
attached, a node's per-message cost stays within 5% of a node without
the hooks at all.  The baseline is a ``NetNode`` subclass whose
``_deliver``/``_send_all``/``_after_progress`` are the pre-monitor
bodies, measured on the synchronous delivery path (the part the hooks
touched) without sockets: a follower folding a leader's replication
stream.  The export-enabled variant is reported, not asserted -- its
cost is the price of running verified, and the queue drains on a
background task off this path anyway.
"""

import random
import time
from typing import List

from repro.net.node import NetNode, NodeConfig, now_ms
from repro.net.wire import ClientResponse
from repro.raft.messages import CommitReq, LogEntry
from repro.raft.server import LEADER
from repro.runtime.driver import ElectionDriver

OPS = 300
ROUNDS = 7
#: Same bound as the sim-side obs contract (DESIGN.md §9, §13).
DISABLED_OVERHEAD_BOUND = 1.05

CONF0 = frozenset({1, 2, 3})


class BareNode(NetNode):
    """The pre-monitor hot path: no partition test, no export gate."""

    def _deliver(self, msg) -> None:
        self._m_received.inc()
        if self._obs:
            self.tracer.receive(
                now_ms(), self.config.nid, msg.frm, type(msg).__name__, 0
            )
        responses, accepted = self.driver.on_message(msg)
        if accepted and isinstance(msg, CommitReq) and msg.frm != self.config.nid:
            self._leader_hint = msg.frm
        self._send_all(responses)
        self._after_progress()

    def _send_all(self, msgs) -> None:
        msgs = msgs + self._courtesy_heartbeats(msgs)
        for msg in msgs:
            outbox = self._outboxes.get(msg.to)
            if outbox is None:
                continue
            outbox.put(msg)

    def _after_progress(self) -> None:
        server = self.server
        if server.role != LEADER:
            if self._pending:
                for pending in self._pending:
                    self._respond(
                        pending,
                        ClientResponse(
                            client_id=pending.request.client_id,
                            seq=pending.request.seq,
                            ok=False,
                            error="not-leader",
                            leader_hint=self._hint(),
                        ),
                    )
                self._pending = []
            if self._read_batches:
                self._bounce_reads(error="not-leader")


def make_node(cls=NetNode, monitor=None) -> NetNode:
    """A follower node wired for synchronous delivery (no sockets)."""
    config = NodeConfig(
        nid=2, host="127.0.0.1", port=0, peers={}, conf0=CONF0,
        seed=7, monitor=monitor,
    )
    node = cls(config)
    node.driver = ElectionDriver(
        server=node.server,
        scheme=node.scheme,
        timing=config.timing,
        rng=node.rng,
        schedule=lambda delay_ms, fn: None,  # timers never fire here
        send_all=node._send_all,
        is_active=lambda: True,
    )
    return node


def replication_stream(ops: int) -> List[CommitReq]:
    """A leader's growing log, one CommitReq per appended entry."""
    rng = random.Random(3)
    entries = tuple(
        LogEntry(time=1, vrsn=i + 1, payload=("put", "k", rng.randrange(100)))
        for i in range(ops)
    )
    return [
        CommitReq(
            frm=1, to=2, time=1, log=entries[: i + 1], commit_len=i
        )
        for i in range(ops)
    ]


def time_variant(factory, stream) -> float:
    node = factory()
    started = time.perf_counter()
    for msg in stream:
        node._deliver(msg)
    elapsed = time.perf_counter() - started
    assert len(node.server.log) == OPS  # the stream really replicated
    return elapsed


def measure(factories, stream) -> dict:
    best = {name: float("inf") for name in factories}
    for _ in range(ROUNDS):
        for name, factory in factories.items():
            best[name] = min(best[name], time_variant(factory, stream))
    return best


def test_disabled_monitor_overhead(benchmark, report, bench_json):
    stream = replication_stream(OPS)
    factories = {
        "bare": lambda: make_node(cls=BareNode),
        "disabled": lambda: make_node(),
        "enabled": lambda: make_node(monitor=("127.0.0.1", 1)),
    }
    # Parity first: every variant folds the stream to the same state.
    logs = {
        name: tuple(make_and_run(factory, stream))
        for name, factory in factories.items()
    }
    assert len(set(logs.values())) == 1

    best = benchmark.pedantic(
        measure, args=(factories, stream), rounds=1, iterations=1
    )
    disabled_ratio = best["disabled"] / best["bare"]
    enabled_ratio = best["enabled"] / best["bare"]
    bench_json({
        "bare_ms": best["bare"] * 1e3,
        "disabled_ms": best["disabled"] * 1e3,
        "enabled_ms": best["enabled"] * 1e3,
        "disabled_ratio": disabled_ratio,
        "enabled_ratio": enabled_ratio,
        "bound": DISABLED_OVERHEAD_BOUND,
    })
    report(
        "",
        "=" * 72,
        f"monitor-export overhead ({OPS} deliveries, min of {ROUNDS})",
        "=" * 72,
        f"  bare (no hooks):          {best['bare'] * 1e3:8.2f} ms",
        f"  hooks, monitor off:       {best['disabled'] * 1e3:8.2f} ms "
        f"({disabled_ratio:.3f}x)",
        f"  hooks, monitor on:        {best['enabled'] * 1e3:8.2f} ms "
        f"({enabled_ratio:.3f}x)",
        f"  contract: disabled <= {DISABLED_OVERHEAD_BOUND:.2f}x",
    )
    assert disabled_ratio <= DISABLED_OVERHEAD_BOUND, (
        f"disabled-monitor overhead {disabled_ratio:.3f}x exceeds the "
        f"{DISABLED_OVERHEAD_BOUND:.2f}x contract"
    )


def make_and_run(factory, stream):
    node = factory()
    for msg in stream:
        node._deliver(msg)
    return node.server.log
