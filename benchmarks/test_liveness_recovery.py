"""Experiment E7 (extension; paper Section 9's future-work direction).

The paper: "Although Adore guarantees the safety of the protocols it
models, it makes no claims about their liveness or availability...
This requires introducing a notion of time and an assumption of a
partially synchronous network."

The reproduction's timed simulator provides exactly that substrate, so
this extension experiment *measures* the liveness quantities the paper
defers, over the autonomous (timeout/heartbeat-driven) cluster:

* time to elect the first leader from a cold start;
* unavailability window after a leader crash (crash → next committed
  client request), across seeds and cluster sizes;
* the same recovery including the reconfiguration that replaces the
  dead node (the intro's full operational story);
* safety re-checked after every run (liveness experiments must not
  trade safety away).
"""

import statistics

from repro.analysis import render_table, summarize
from repro.runtime import AutonomousCluster, TimingConfig
from repro.schemes import RaftSingleNodeScheme

SEEDS = range(12)
TIMING = TimingConfig(
    heartbeat_ms=5.0,
    election_timeout_min_ms=15.0,
    election_timeout_max_ms=30.0,
)


def measure_liveness():
    results = {}
    for size in (3, 5):
        nodes = frozenset(range(1, size + 1))
        cold, recovery = [], []
        for seed in SEEDS:
            cluster = AutonomousCluster(
                nodes, RaftSingleNodeScheme(), seed=seed, timing=TIMING
            )
            leader = cluster.wait_for_leader()
            assert leader is not None
            cold.append(cluster.sim.now)
            for i in range(5):
                assert cluster.submit(f"warm{i}") is not None
            crash_at = cluster.sim.now
            cluster.crash(leader)
            assert cluster.submit("probe", max_wait_ms=10_000.0) is not None
            recovery.append(cluster.sim.now - crash_at)
            assert cluster.check_safety() == []
        results[size] = (cold, recovery)
    return results


def test_liveness_recovery(benchmark, report, bench_json):
    results = benchmark.pedantic(measure_liveness, rounds=1, iterations=1)
    bench_json({
        f"{size}_nodes": {
            "cold_start_mean_ms": statistics.mean(cold),
            "cold_start_max_ms": max(cold),
            "recovery_mean_ms": statistics.mean(recovery),
            "recovery_max_ms": max(recovery),
        }
        for size, (cold, recovery) in sorted(results.items())
    })
    rows = []
    for size, (cold, recovery) in sorted(results.items()):
        cold_stats = summarize(cold)
        rec_stats = summarize(recovery)
        rows.append((
            f"{size} nodes",
            f"{cold_stats.mean:.1f}",
            f"{cold_stats.maximum:.1f}",
            f"{rec_stats.mean:.1f}",
            f"{rec_stats.maximum:.1f}",
        ))
    report(
        "",
        "=" * 72,
        "E7 (extension) / Section 9 -- liveness under partial synchrony",
        f"(timeouts {TIMING.election_timeout_min_ms:.0f}-"
        f"{TIMING.election_timeout_max_ms:.0f} ms, heartbeat "
        f"{TIMING.heartbeat_ms:.0f} ms, {len(list(SEEDS))} seeds; "
        "simulated ms)",
        "=" * 72,
        render_table(
            ["cluster", "cold-start mean", "cold-start max",
             "crash recovery mean", "crash recovery max"],
            rows,
        ),
    )
    for size, (cold, recovery) in results.items():
        # Cold start is bounded by roughly one timeout window (plus
        # retries for split votes); recovery by detection + election.
        assert statistics.mean(cold) < 4 * TIMING.election_timeout_max_ms
        assert statistics.mean(recovery) < 8 * TIMING.election_timeout_max_ms


def test_recovery_with_node_replacement(benchmark, report, bench_json):
    """Crash -> failover -> reconfigure the dead node out and a fresh
    one in -- while measuring the total disruption."""

    def run():
        out = []
        for seed in SEEDS:
            nodes = frozenset({1, 2, 3})
            cluster = AutonomousCluster(
                nodes,
                RaftSingleNodeScheme(),
                seed=seed,
                timing=TIMING,
                extra_nodes={4},
            )
            dead = cluster.wait_for_leader()
            for i in range(3):
                assert cluster.submit(f"w{i}") is not None
            crash_at = cluster.sim.now
            cluster.crash(dead)
            assert cluster.submit("probe", max_wait_ms=10_000.0) is not None
            leader = cluster.leader()
            server = cluster.servers[leader]
            survivors = frozenset(n for n in nodes if n != dead)
            ok, reason = server.reconfig(survivors, cluster.scheme)
            assert ok, reason
            assert cluster.submit("drain") is not None
            ok, reason = server.reconfig(
                survivors | {4}, cluster.scheme
            )
            assert ok, reason
            assert cluster.submit("fresh") is not None
            cluster.run_for(50.0)
            assert cluster.check_safety() == []
            out.append(cluster.sim.now - crash_at)
        return out

    durations = benchmark.pedantic(run, rounds=1, iterations=1)
    stats = summarize(durations)
    bench_json({
        "disruption_mean_ms": stats.mean,
        "disruption_p99_ms": stats.p99,
        "disruption_max_ms": stats.maximum,
        "seeds": stats.count,
    })
    report(
        "",
        "E7 / full replacement story (crash -> failover -> remove dead "
        "node -> add fresh node):",
        f"  total disruption mean {stats.mean:.1f} ms, "
        f"p99 {stats.p99:.1f} ms, max {stats.maximum:.1f} ms "
        f"({stats.count} seeds); safety held in every run",
    )
    assert stats.maximum < 1_000.0
