#!/usr/bin/env python3
"""The reconfiguration scheme zoo (paper Section 6, plus scheme #7).

Adore's safety proof is parameterized: any ``Config``/``isQuorum``/
``R1⁺`` triple satisfying REFLEXIVE and OVERLAP inherits the proof.
This script exercises each bundled scheme twice:

* exhaustively checking REFLEXIVE and OVERLAP over a bounded node
  universe (the executable analogue of the per-scheme Coq side
  conditions -- about 200 lines for six schemes in the artifact), and
* running the same generic Adore machine through an election, a
  commit, and a reconfiguration under that scheme.

The zoo includes scheme #7, MongoDB's logless dynamic reconfiguration
(config state outside the oplog, ordered by ``(term, version)``).  It
also checks the deliberately broken multi-node scheme and shows OVERLAP
failing with a concrete witness: the R1⁺-related config pair and one
disjoint quorum of each.

Run:  python examples/scheme_zoo.py
      python examples/scheme_zoo.py --differential   (comparison matrix)
"""

from repro.analysis import render_table
from repro.core import AdoreMachine, RandomOracle, check_state, committed_log
from repro.schemes import (
    DynamicQuorumScheme,
    JointConfig,
    JointConsensusScheme,
    LoglessConfig,
    LoglessReconfigScheme,
    PrimaryBackupConfig,
    PrimaryBackupScheme,
    RaftSingleNodeScheme,
    RotatingPrimaryScheme,
    SizedConfig,
    UnanimousScheme,
    UnsafeMultiNodeScheme,
    WeightedConfig,
    WeightedMajorityScheme,
    check_assumptions,
)

#: scheme, initial config, a legal reconfiguration target.
ZOO = [
    (RaftSingleNodeScheme(), frozenset({1, 2, 3}), frozenset({1, 2, 3, 4})),
    (
        JointConsensusScheme(),
        JointConfig.stable({1, 2, 3}),
        JointConfig.transition({1, 2, 3}, {1, 4, 5}),
    ),
    (
        PrimaryBackupScheme(),
        PrimaryBackupConfig.of(1, {2, 3}),
        PrimaryBackupConfig.of(1, {4, 5}),
    ),
    (
        RotatingPrimaryScheme(),
        PrimaryBackupConfig.of(1, {2, 3}),
        PrimaryBackupConfig.of(2, {1, 3}),
    ),
    (DynamicQuorumScheme(), SizedConfig.of(2, {1, 2, 3}),
     SizedConfig.of(4, {1, 2, 3, 4, 5})),
    (UnanimousScheme(), frozenset({1, 2, 3}), frozenset({1, 4, 5})),
    (
        WeightedMajorityScheme(),
        WeightedConfig.of({1: 2, 2: 1, 3: 1}),
        WeightedConfig.of({1: 2, 2: 1, 3: 1, 4: 1}),
    ),
    (
        # The reconfig bumps the version at the leader's (post-election)
        # term, exactly as MongoDB installs (version+1, leader_term).
        LoglessReconfigScheme(),
        LoglessConfig.initial({1, 2, 3}),
        LoglessConfig.of(1, 1, {1, 2, 3, 4}),
    ),
]


def print_witnesses(report) -> None:
    """Render an assumption report's concrete counterexamples."""
    for witness in report.reflexive_witnesses[:3]:
        print(f"  witness: {witness.describe()}")
    for witness in report.overlap_witnesses[:3]:
        print(f"  witness: {witness.old_described} -> {witness.new_described}")
        print(f"    quorum of old config: {list(witness.quorum_old)}")
        print(f"    quorum of new config: {list(witness.quorum_new)} (disjoint)")


def main(differential: bool = False) -> None:
    if differential:
        from repro.mc.differential import SMOKE_BUDGETS, run_differential

        print("== Differential matrix (smoke budgets) ==\n")
        report = run_differential(
            budgets=SMOKE_BUDGETS,
            max_states=50_000,
            progress=lambda message: print(f"  {message}"),
        )
        print()
        print(report.render())
        return

    print("== REFLEXIVE / OVERLAP assumption checks (3-node universe) ==\n")
    rows = []
    reports = []
    for scheme, _, _ in ZOO:
        report = check_assumptions(scheme, [1, 2, 3])
        reports.append(report)
        rows.append((
            scheme.name,
            report.configs_checked,
            report.transition_pairs,
            report.quorum_pairs_checked,
            "OK" if report.ok else "VIOLATED",
        ))
    print(render_table(
        ["scheme", "configs", "R1+ transitions", "quorum pairs", "result"],
        rows,
    ))
    for report in reports:
        if not report.ok:
            print(f"\n{report.scheme} violations:")
            print_witnesses(report)

    print("\n== The same generic machine under every scheme ==\n")
    for scheme, conf0, target in ZOO:
        machine = AdoreMachine.create(
            conf0,
            scheme,
            RandomOracle(seed=1, fail_prob=0.0, quorums_only=True),
        )
        leader = sorted(scheme.members(conf0))[0]
        machine.pull(leader)
        machine.invoke(leader, "m")
        machine.push(leader)
        result = machine.reconfig(leader, target)
        machine.push(leader)
        safe = check_state(machine.state).ok
        print(
            f"{scheme.name:22s} reconfig {scheme.describe_config(conf0)} -> "
            f"{scheme.describe_config(target)}: {result.reason}; "
            f"committed {len(committed_log(machine.state.tree))} entries; "
            f"safe={safe}"
        )

    print("\n== The broken scheme: OVERLAP fails ==\n")
    broken = check_assumptions(
        UnsafeMultiNodeScheme(), [1, 2, 3, 4], stop_at_first=True
    )
    print(broken.summary())
    print_witnesses(broken)


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--differential",
        action="store_true",
        help="print the seven-scheme comparison matrix on smoke budgets",
    )
    main(differential=parser.parse_args().differential)
