#!/usr/bin/env python3
"""The reconfiguration scheme zoo (paper Section 6).

Adore's safety proof is parameterized: any ``Config``/``isQuorum``/
``R1⁺`` triple satisfying REFLEXIVE and OVERLAP inherits the proof.
This script exercises each bundled scheme twice:

* exhaustively checking REFLEXIVE and OVERLAP over a bounded node
  universe (the executable analogue of the per-scheme Coq side
  conditions -- about 200 lines for six schemes in the artifact), and
* running the same generic Adore machine through an election, a
  commit, and a reconfiguration under that scheme.

It also checks the deliberately broken multi-node scheme and shows
OVERLAP failing with a concrete pair of disjoint quorums.

Run:  python examples/scheme_zoo.py
"""

from repro.analysis import render_table
from repro.core import AdoreMachine, RandomOracle, check_state, committed_log
from repro.schemes import (
    DynamicQuorumScheme,
    JointConfig,
    JointConsensusScheme,
    PrimaryBackupConfig,
    PrimaryBackupScheme,
    RaftSingleNodeScheme,
    RotatingPrimaryScheme,
    SizedConfig,
    UnanimousScheme,
    UnsafeMultiNodeScheme,
    WeightedConfig,
    WeightedMajorityScheme,
    check_assumptions,
)

#: scheme, initial config, a legal reconfiguration target.
ZOO = [
    (RaftSingleNodeScheme(), frozenset({1, 2, 3}), frozenset({1, 2, 3, 4})),
    (
        JointConsensusScheme(),
        JointConfig.stable({1, 2, 3}),
        JointConfig.transition({1, 2, 3}, {1, 4, 5}),
    ),
    (
        PrimaryBackupScheme(),
        PrimaryBackupConfig.of(1, {2, 3}),
        PrimaryBackupConfig.of(1, {4, 5}),
    ),
    (
        RotatingPrimaryScheme(),
        PrimaryBackupConfig.of(1, {2, 3}),
        PrimaryBackupConfig.of(2, {1, 3}),
    ),
    (DynamicQuorumScheme(), SizedConfig.of(2, {1, 2, 3}),
     SizedConfig.of(4, {1, 2, 3, 4, 5})),
    (UnanimousScheme(), frozenset({1, 2, 3}), frozenset({1, 4, 5})),
    (
        WeightedMajorityScheme(),
        WeightedConfig.of({1: 2, 2: 1, 3: 1}),
        WeightedConfig.of({1: 2, 2: 1, 3: 1, 4: 1}),
    ),
]


def main() -> None:
    print("== REFLEXIVE / OVERLAP assumption checks (3-node universe) ==\n")
    rows = []
    for scheme, _, _ in ZOO:
        report = check_assumptions(scheme, [1, 2, 3])
        rows.append((
            scheme.name,
            report.configs_checked,
            report.transition_pairs,
            report.quorum_pairs_checked,
            "OK" if report.ok else "VIOLATED",
        ))
    print(render_table(
        ["scheme", "configs", "R1+ transitions", "quorum pairs", "result"],
        rows,
    ))

    print("\n== The same generic machine under every scheme ==\n")
    for scheme, conf0, target in ZOO:
        machine = AdoreMachine.create(
            conf0,
            scheme,
            RandomOracle(seed=1, fail_prob=0.0, quorums_only=True),
        )
        leader = sorted(scheme.members(conf0))[0]
        machine.pull(leader)
        machine.invoke(leader, "m")
        machine.push(leader)
        result = machine.reconfig(leader, target)
        machine.push(leader)
        safe = check_state(machine.state).ok
        print(
            f"{scheme.name:22s} reconfig {scheme.describe_config(conf0)} -> "
            f"{scheme.describe_config(target)}: {result.reason}; "
            f"committed {len(committed_log(machine.state.tree))} entries; "
            f"safe={safe}"
        )

    print("\n== The broken scheme: OVERLAP fails ==\n")
    broken = check_assumptions(
        UnsafeMultiNodeScheme(), [1, 2, 3, 4], stop_at_first=True
    )
    print(broken.summary())
    if broken.overlap_violations:
        print("witness:", broken.overlap_violations[0])


if __name__ == "__main__":
    main()
