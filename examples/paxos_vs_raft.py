#!/usr/bin/env python3
"""Raft-style vs Paxos-style elections over the same Adore model.

Appendix A of the paper: "Paxos and Raft use different approaches to
ensure that a candidate's log is sufficiently up-to-date... In Paxos,
replicas respond to the candidate with their own logs, and the
candidate chooses the one whose last entry has the latest timestamp.
A candidate in Raft sends its log to the replicas, which compare
against their own logs to decide how to vote."

This script runs the same scenario through both network-level variants
and checks each against the Adore model with the lockstep refinement
checker — one abstract model, two protocols.

Run:  python examples/paxos_vs_raft.py
"""

from repro.paxos import PaxosSystem
from repro.raft import RaftSystem
from repro.refinement import PaxosSimulationChecker, SimulationChecker
from repro.schemes import RaftSingleNodeScheme

CONF = frozenset({1, 2, 3})
SCHEME = RaftSingleNodeScheme()


def orphan_scenario(system_cls):
    """Leader 1 commits one entry, leaves one orphan; leader 2 takes over."""
    system = system_cls(CONF, SCHEME)
    system.elect(1)
    system.deliver_all()
    system.invoke(1, "committed")
    system.commit(1)
    system.deliver_all()
    system.invoke(1, "orphan")  # never replicated
    system.elect(2)
    system.deliver_all()
    return system


def main() -> None:
    print("== The orphan-entry scenario, both protocols ==\n")
    raft = orphan_scenario(RaftSystem)
    paxos = orphan_scenario(PaxosSystem)

    print("Raft:  leader 2's log after the takeover:")
    print("   ", [e.describe() for e in raft.servers[2].log])
    print("    (Raft candidates keep their own log; the orphan stays on")
    print("     S1 until overwritten — S1 denied S2's vote, but S3's")
    print("     granted vote plus S2's own made a quorum)\n")

    print("Paxos: leader 2's log after the takeover:")
    print("   ", [e.describe() for e in paxos.servers[2].log])
    print("    (Paxos candidates adopt the best promised log: S1's")
    print("     promise carried the orphan, so S2 rescued it)\n")

    for name, system in (("Raft", raft), ("Paxos", paxos)):
        violations = system.check_log_safety()
        print(f"{name}: committed-prefix safety:",
              "OK" if not violations else violations)

    print("\n== Both protocols refine the same Adore model ==\n")
    for name, checker in (
        ("Raft ", SimulationChecker),
        ("Paxos", PaxosSimulationChecker),
    ):
        sim = checker(CONF, SCHEME)
        sim.elect(1, [2, 3])
        sim.invoke(1, "committed")
        sim.commit(1, [2, 3])
        sim.invoke(1, "orphan")
        sim.elect(2, [1, 3])
        sim.invoke(2, "next")
        sim.commit(2, [1, 3])
        print(f"{name}: {len(sim.steps)} mirrored steps, "
              f"ℝ held throughout: {sim.ok}")
        tip = sim.adore.tree
        print(f"       Adore tree: {len(tip)} caches, "
              f"{len(tip.ccaches())} commits")
    print("\nSame cache-tree abstraction, two election styles — the")
    print("genericity Section 5 claims ('many protocols, including")
    print("various Paxos variants and Raft').")


if __name__ == "__main__":
    main()
