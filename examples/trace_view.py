#!/usr/bin/env python3
"""Render a violation bundle: timeline, message flow, replayed verdict.

A failed nemesis run (``NemesisConfig(bundle_dir=...)``) leaves a
*violation bundle* on disk -- the serialized chaos config, both
checkers' verdicts, the metrics snapshot, the full typed event trace,
and the client history.  This viewer turns that directory back into an
explanation:

* the **timeline**: elections, leader changes, crashes/restarts,
  partitions, reconfigurations, and commit milestones, in simulated
  time with Lamport stamps;
* the **message flow**: per-link sent/dropped/duplicated totals, which
  shows *where* the network was torn;
* the **replayed verdict**: every stochastic input is part of the
  bundled config, so re-running it must reproduce the identical
  violation (same seed ⇒ same violation) -- the viewer replays and
  checks.

Run:  python examples/trace_view.py runs/bundles/nemesis-seed2
      python examples/trace_view.py            # demo: make one, view it

Without an argument the demo builds its own bundle by running a chaos
schedule against the historical request-id-less client
(``client_request_ids=False``), whose retry-after-timeout double
commits -- the bug ISSUE 2 fixed, now kept as a teaching scenario.
"""

import argparse
import sys
import tempfile
from collections import Counter

from repro.analysis import render_table
from repro.obs import events_by_kind, load_bundle, replay_bundle, verdict_matches

#: Event kinds worth a timeline line (transport noise is summarized
#: separately); commits are milestoned to every Nth per node.
TIMELINE_KINDS = (
    "election_start",
    "leader_elected",
    "crash",
    "restart",
    "partition_start",
    "reconfig",
)


def timeline_lines(events, commit_every: int = 25, limit: int = 60):
    """The protocol-level timeline: control events plus every
    ``commit_every``-th commit milestone per node."""
    lines = []
    commit_counts = Counter()
    for event in events:
        if event.kind in TIMELINE_KINDS:
            lines.append(event.describe())
        elif event.kind == "commit":
            commit_counts[event.node] += 1
            if commit_counts[event.node] % commit_every == 0:
                lines.append(event.describe())
    shown = lines[:limit]
    if len(lines) > limit:
        shown.append(f"  ... {len(lines) - limit} more timeline events")
    return shown


def flow_table(events) -> str:
    """Per-link sent/dropped/duplicated totals from the transport trace."""
    sent = Counter()
    dropped = Counter()
    duplicated = Counter()
    for event in events_by_kind(events, "send"):
        sent[(event.node, event.data["to"])] += 1
    for event in events_by_kind(events, "drop"):
        dropped[(event.node, event.data["to"])] += 1
    for event in events_by_kind(events, "duplicate"):
        duplicated[(event.node, event.data["to"])] += 1
    links = sorted(set(sent) | set(dropped) | set(duplicated))
    rows = [
        (
            f"S{frm} -> S{to}",
            sent[(frm, to)],
            dropped[(frm, to)],
            duplicated[(frm, to)],
        )
        for frm, to in links
    ]
    return render_table(("link", "sent", "dropped", "duplicated"), rows)


def render_bundle(bundle) -> None:
    manifest = bundle.manifest
    verdict = bundle.verdict
    config = manifest["config"]
    print(f"bundle: {bundle.path}")
    print(
        f"  seed={bundle.seed} ops={config['ops']} "
        f"client_request_ids={config['client_request_ids']} "
        f"crashes@{tuple(config['crash_leader_at'])} "
        f"partition@{config['partition_at']}"
    )
    print(
        f"  verdict: ok={verdict['ok']} "
        f"safety_violations={len(verdict['safety_violations'])} "
        f"linearizable={verdict['linearizability_ok']}"
    )
    for problem in verdict["safety_violations"][:5]:
        print(f"    safety: {problem}")
    print(f"    {verdict['linearizability']}")

    print("\ntimeline (elections, faults, reconfigs, commit milestones):")
    for line in timeline_lines(bundle.events):
        print(f"  {line}")

    print("\nmessage flow:")
    print(flow_table(bundle.events))

    counters = manifest.get("metrics", {}).get("counters", {})
    if counters:
        print("\nrun counters:")
        for name in sorted(counters):
            print(f"  {name} = {counters[name]}")
    print(
        f"\ntrace: {manifest['trace_buffered']} events buffered "
        f"({manifest['trace_recorded']} recorded), "
        f"history: {len(bundle.history.operations)} client operations"
    )


def make_demo_bundle(directory: str) -> str:
    """A self-contained violating run: the pre-dedup client under the
    chaos schedule the nemesis regression test uses."""
    from repro.runtime import NemesisConfig, NetworkConditions, run_nemesis

    config = NemesisConfig(
        seed=2,
        ops=250,
        conditions=NetworkConditions(drop_prob=0.05, reorder_prob=0.2),
        crash_leader_at=(60, 140),
        partition_at=100,
        partition_ms=60.0,
        partition_symmetric=False,
        client_request_ids=False,
        bundle_dir=directory,
    )
    print("demo: running a violating nemesis schedule "
          "(request-id-less client, seed=2) ...")
    result = run_nemesis(config)
    if result.bundle_path is None:
        raise SystemExit("demo run unexpectedly passed; no bundle written")
    return result.bundle_path


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "bundle", nargs="?", default=None,
        help="bundle directory (default: generate a demo bundle)",
    )
    parser.add_argument(
        "--no-replay", dest="replay", action="store_false",
        help="skip the replay/verdict-match step",
    )
    return parser.parse_args()


def main(bundle: str = None, replay: bool = True) -> int:
    if bundle is None:
        bundle = make_demo_bundle(tempfile.mkdtemp(prefix="trace-view-"))
    loaded = load_bundle(bundle)
    render_bundle(loaded)
    if not replay:
        return 0
    print("\nreplaying the bundled config ...")
    replayed = replay_bundle(loaded)
    if not verdict_matches(loaded, replayed):
        print("REPLAY DIVERGED: the bundle no longer reproduces its "
              "verdict", file=sys.stderr)
        return 1
    print(
        f"replay verdict matches the bundle "
        f"(ok={replayed.ok}, same safety violations, "
        f"same linearizability failures)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(**vars(parse_args())))
