#!/usr/bin/env python3
"""The replicated KV store as live OS processes over real TCP.

``kvstore_cluster.py`` runs the paper's motivating application on the
discrete-event simulator; this example runs the *same unmodified
specification handlers* as five localhost processes speaking
length-prefixed TCP (:mod:`repro.net`) -- the executable analog of the
paper's extraction story (Section 8).  The demonstration walks hot
reconfiguration 3 → 4 → 5 → 4 under live client traffic, SIGKILLs the
leader, and finishes with the Wing-Gong linearizability check over the
client-observed history plus a committed-prefix agreement audit across
the surviving processes.

Run:  python examples/net_cluster.py
"""

import statistics

from repro.net import LocalCluster
from repro.runtime.linearize import check_history


def main() -> None:
    with LocalCluster(nids=(1, 2, 3, 4, 5), conf0=frozenset({1, 2, 3}),
                      seed=42) as cluster:
        leader = cluster.wait_for_leader()
        print(f"5 processes up (members: 1,2,3), leader = S{leader}\n")

        with cluster.client(client_id="example") as kv:
            print("== Writing under the initial 3-node configuration ==")
            started = len(kv.history.operations)
            for i in range(20):
                kv.put(f"user:{i}", i)
            lat = [
                op.completed_ms - op.invoked_ms
                for op in kv.history.operations[started:]
            ]
            print(f"20 puts done; median latency "
                  f"{statistics.median(lat):.2f} ms (wall clock)\n")

            print("== Growing to 4 nodes while serving traffic ==")
            assert kv.reconfigure(frozenset({1, 2, 3, 4}))
            for i in range(20, 40):
                kv.put(f"user:{i}", i)
            print("reconfig committed; 20 more puts served\n")

            print("== Growing to 5 nodes, then shrinking back ==")
            assert kv.reconfigure(frozenset({1, 2, 3, 4, 5}))
            kv.put("checkpoint", True)
            assert kv.reconfigure(frozenset({1, 2, 3, 4}))
            print("membership now 1,2,3,4\n")

            victim = cluster.wait_for_leader()
            print(f"== SIGKILLing the leader, S{victim} ==")
            cluster.kill(victim)
            leader = cluster.wait_for_leader(exclude=(victim,))
            print(f"S{leader} took over; writing through the new leader")
            for i in range(40, 50):
                kv.put(f"user:{i}", i)
            kv.add("user:1", 10)
            assert kv.get("user:1") == 11

            print("\n== Safety checks over the real-TCP run ==")
            verdict = check_history(kv.history)
            print(f"client history: {verdict.describe()}")
            assert verdict.ok

            probe = kv
            logs = {
                nid: entries
                for nid in cluster.nids
                if cluster.handles[nid].alive
                and (entries := probe.committed_log(nid)) is not None
            }
            nids = sorted(logs)
            agree = all(
                logs[a][: min(len(logs[a]), len(logs[b]))]
                == logs[b][: min(len(logs[a]), len(logs[b]))]
                for i, a in enumerate(nids)
                for b in nids[i + 1:]
            )
            print(f"{len(nids)} live nodes agree on committed prefixes: "
                  f"{agree}")
            assert agree

        codes = cluster.shutdown()
        print(f"shutdown exit codes: { {n: c for n, c in codes.items()} }")


if __name__ == "__main__":
    main()
