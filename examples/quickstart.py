#!/usr/bin/env python3
"""Quickstart: drive an Adore machine through elections, commands,
commits, and a live reconfiguration, then check safety.

The Adore model (PLDI 2022) represents a reconfigurable consensus
system as a single *cache tree*: elections (ECaches), commands
(MCaches), configuration changes (RCaches), and commits (CCaches) are
all nodes of one append-only tree, and replicated state safety is the
statement that every CCache lies on one branch.

Run:  python examples/quickstart.py
"""

from repro.core import (
    AdoreMachine,
    RandomOracle,
    check_state,
    committed_methods,
)
from repro.schemes import RaftSingleNodeScheme


def main() -> None:
    # Three replicas with majority quorums and Raft-style single-node
    # membership changes.
    conf0 = frozenset({1, 2, 3})
    machine = AdoreMachine.create(
        conf0=conf0,
        scheme=RaftSingleNodeScheme(),
        oracle=RandomOracle(seed=2024, fail_prob=0.0, quorums_only=True),
    )

    print("== A replica is elected leader (pull) ==")
    result = machine.pull(1)
    print(f"pull(1): {result.reason}; tree:\n{machine.render()}\n")

    print("== The leader replicates two commands (invoke) ==")
    machine.invoke(1, "put(a, 1)")
    machine.invoke(1, "put(b, 2)")
    print(machine.render(), "\n")

    print("== A quorum acknowledges: commit (push) ==")
    machine.push(1)
    print(machine.render())
    print("committed so far:", committed_methods(machine.state.tree), "\n")

    print("== Hot reconfiguration: add replica 4 (reconfig) ==")
    result = machine.reconfig(1, frozenset({1, 2, 3, 4}))
    print(f"reconfig: {result.reason}")
    machine.push(1)
    print(machine.render())
    print("committed so far:", committed_methods(machine.state.tree), "\n")

    print("== A new leader takes over under the new configuration ==")
    machine.pull(2)
    machine.invoke(2, "put(c, 3)")
    machine.push(2)
    print(machine.render(), "\n")

    report = check_state(machine.state)
    print("replicated state safety:", "OK" if report.ok else "VIOLATED")
    for violation in report.all_violations():
        print("  ", violation)
    print("final committed log:", committed_methods(machine.state.tree))


if __name__ == "__main__":
    main()
