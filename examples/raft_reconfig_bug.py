#!/usr/bin/env python3
"""The historical Raft single-node membership bug (paper Fig. 4/12).

Raft's original single-node membership change algorithm (Ongaro's
thesis, 2014) allowed a leader to propose a configuration change
without first committing a command of its own term.  Over a year later
a schedule was found in which two leaders end up with *disjoint
quorums* and commit divergent histories.  The fix (R3) requires a
committed entry at the leader's current timestamp before any
reconfiguration.

This script demonstrates the bug three ways:

1. through the Adore model with a scripted oracle (the exact Fig. 12
   cache trees);
2. through the asynchronous network-based Raft specification (the
   exact Fig. 4 message schedule);
3. by letting the bounded model checker *rediscover* the violation
   automatically with R3 ablated -- and certify the same schedule class
   safe with R3 on.

Run:  python examples/raft_reconfig_bug.py
"""

from repro.core import check_replicated_state_safety
from repro.core.figures import fig4_blocked_machine, fig4_unsafe_machine
from repro.mc import FIG4_BUDGET, FIG4_NODES, Explorer
from repro.raft import run_buggy, run_fixed
from repro.schemes import RaftSingleNodeScheme


def adore_level() -> None:
    print("=" * 70)
    print("1. Adore model: the Fig. 12 cache trees")
    print("=" * 70)
    machine, labels = fig4_unsafe_machine()
    print("Without R3, the schedule completes; final cache tree:\n")
    print(machine.state.tree.render())
    print()
    for violation in check_replicated_state_safety(machine.state.tree):
        print("VIOLATION:", violation)
    tree = machine.state.tree
    print(
        "Disjoint commit quorums:",
        sorted(tree.cache(labels["C2"]).voters),
        "vs",
        sorted(tree.cache(labels["C3"]).voters),
    )
    print()
    _, denied = fig4_blocked_machine()
    print(f"With R3 the very first reconfiguration is denied: {denied.reason}")
    print()


def network_level() -> None:
    print("=" * 70)
    print("2. Network-based Raft spec: the Fig. 4 message schedule")
    print("=" * 70)
    outcome = run_buggy()
    print("Pre-fix algorithm (no R3):")
    for line in outcome.reconfig_results:
        print("  ", line)
    print(outcome.system.describe())
    for violation in outcome.safety_violations:
        print("VIOLATION:", violation)
    print()
    fixed = run_fixed()
    print("Fixed algorithm (R3 on):")
    for line in fixed.reconfig_results:
        print("  ", line)
    print("safety violations:", fixed.safety_violations or "none")
    print()


def model_checker() -> None:
    print("=" * 70)
    print("3. Model checker: rediscovering the bug automatically")
    print("=" * 70)
    hunt = Explorer(
        RaftSingleNodeScheme(),
        FIG4_NODES,
        callers=[1, 2],
        budget=FIG4_BUDGET,
        quorum_pulls_only=True,
        minimal_quorums_only=True,
        enforce_r3=False,
        invariants=["safety"],
        strategy="guided",
    )
    result = hunt.run()
    print("R3 ablated:", result.summary())
    if result.violations:
        print(result.violations[0].describe())
    print()
    verify = Explorer(
        RaftSingleNodeScheme(),
        FIG4_NODES,
        callers=[1, 2],
        budget=FIG4_BUDGET,
        quorum_pulls_only=True,
        minimal_quorums_only=True,
        invariants=["safety"],
    )
    print("R3 enforced (same schedule class):", verify.run().summary())


def main() -> None:
    adore_level()
    network_level()
    model_checker()


if __name__ == "__main__":
    main()
