#!/usr/bin/env python3
"""Bounded model checking of Adore safety (the Theorem 4.5 substitute).

The paper proves replicated state safety in Coq.  This reproduction
checks the identical invariants over *every* state reachable within a
bounded schedule class -- exhaustively -- and then shows each design
rule is load-bearing by ablating it and exhibiting the counterexample
the checker finds.

Run:  python examples/model_check_safety.py              (quick)
      python examples/model_check_safety.py --full       (all ablations)
      python examples/model_check_safety.py --workers 4  (parallel engine)
      python examples/model_check_safety.py --smoke      (CI-sized run)

``--workers N`` partitions each BFS frontier level across N processes;
the verdict and state count are identical to the sequential run.
``--checkpoint PATH`` makes the positive verification resumable: an
interrupted run (or one stopped by ``--max-seconds``) continues from
its last completed level on the next invocation.
"""

import argparse

from repro.analysis import render_table
from repro.mc import (
    OpBudget,
    ablate_insert_btw,
    ablate_overlap,
    ablate_r2,
    ablate_r3,
    print_progress,
    verify_intact,
)


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--full", action="store_true",
        help="run the R2/R3/OVERLAP hunts too (a few minutes)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI-sized run: small budget, one ablation hunt",
    )
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes for the parallel engine (default: 1, "
             "sequential; 0 = all cores)",
    )
    parser.add_argument(
        "--checkpoint", metavar="PATH", default=None,
        help="checkpoint file for the positive verification; an existing "
             "matching checkpoint is resumed",
    )
    parser.add_argument(
        "--max-seconds", type=float, default=None, metavar="S",
        help="stop the positive verification after S seconds, writing a "
             "checkpoint (use with --checkpoint to split across runs)",
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="print per-level throughput counters (parallel engine)",
    )
    return parser.parse_args()


def main(
    full: bool = False,
    smoke: bool = False,
    workers: int = 1,
    checkpoint: str = None,
    max_seconds: float = None,
    progress: bool = False,
) -> None:
    args = argparse.Namespace(
        full=full, smoke=smoke, workers=workers,
        checkpoint=checkpoint, max_seconds=max_seconds, progress=progress,
    )
    budget = (
        OpBudget(pulls=1, invokes=2, reconfigs=1, pushes=2)
        if args.smoke
        else OpBudget(pulls=2, invokes=2, reconfigs=1, pushes=2)
    )
    engine_options = {}
    parallel = args.workers != 1 or args.checkpoint or args.max_seconds
    if parallel:
        if args.max_seconds is not None:
            engine_options["max_seconds"] = args.max_seconds
        if args.progress:
            engine_options["progress"] = print_progress

    print("== Positive verification: the intact model is safe ==\n")
    result = verify_intact(
        budget=budget,
        conf0=frozenset({1, 2, 3}),
        workers=args.workers,
        checkpoint=args.checkpoint,
        **engine_options,
    )
    engine = f"{args.workers} worker(s)" if parallel else "sequential"
    print(f"3 nodes, {result.budget} [{engine}] -> {result.summary()}")
    if result.stats is not None:
        print("engine:", result.stats.describe())
    if result.interrupted:
        print("\ninterrupted by --max-seconds; re-run with the same "
              "--checkpoint to continue")
        return
    assert result.safe and result.exhausted

    print("\n== Ablations: remove one rule, find one counterexample ==\n")
    ablations = [("insertBtw -> addLeaf", ablate_insert_btw)]
    if args.full:
        ablations += [
            ("no R3 (pre-fix Raft)", ablate_r3),
            ("no R2", ablate_r2),
            ("no OVERLAP (multi-node jumps)", ablate_overlap),
        ]
    rows = []
    details = []
    for name, runner in ablations:
        outcome = runner(workers=args.workers)
        first = outcome.violations[0] if outcome.violations else None
        rows.append((
            name,
            outcome.states_visited,
            len(first.trace) if first else "-",
            f"{outcome.elapsed_seconds:.2f}s",
            "VIOLATION FOUND" if first else "none found",
        ))
        if first:
            details.append((name, first))
    print(render_table(
        ["ablation", "states", "depth", "time", "result"], rows
    ))
    for name, violation in details:
        print(f"\n--- counterexample for: {name} ---")
        print(violation.describe())

    if not args.full and not args.smoke:
        print("\n(run with --full for the R2/R3/OVERLAP hunts; "
              "they take a few minutes)")


if __name__ == "__main__":
    main(**vars(parse_args()))
