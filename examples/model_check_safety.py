#!/usr/bin/env python3
"""Bounded model checking of Adore safety (the Theorem 4.5 substitute).

The paper proves replicated state safety in Coq.  This reproduction
checks the identical invariants over *every* state reachable within a
bounded schedule class -- exhaustively -- and then shows each design
rule is load-bearing by ablating it and exhibiting the counterexample
the checker finds.

Run:  python examples/model_check_safety.py          (quick)
      python examples/model_check_safety.py --full   (all ablations)
"""

import sys

from repro.analysis import render_table
from repro.mc import (
    OpBudget,
    ablate_insert_btw,
    ablate_overlap,
    ablate_r2,
    ablate_r3,
    verify_intact,
)


def main(full: bool) -> None:
    print("== Positive verification: the intact model is safe ==\n")
    result = verify_intact(
        budget=OpBudget(pulls=2, invokes=2, reconfigs=1, pushes=2),
        conf0=frozenset({1, 2, 3}),
    )
    print("3 nodes,", result.budget, "->", result.summary())
    assert result.safe and result.exhausted

    print("\n== Ablations: remove one rule, find one counterexample ==\n")
    ablations = [("insertBtw -> addLeaf", ablate_insert_btw)]
    if full:
        ablations += [
            ("no R3 (pre-fix Raft)", ablate_r3),
            ("no R2", ablate_r2),
            ("no OVERLAP (multi-node jumps)", ablate_overlap),
        ]
    rows = []
    details = []
    for name, runner in ablations:
        outcome = runner()
        first = outcome.violations[0] if outcome.violations else None
        rows.append((
            name,
            outcome.states_visited,
            len(first.trace) if first else "-",
            f"{outcome.elapsed_seconds:.2f}s",
            "VIOLATION FOUND" if first else "none found",
        ))
        if first:
            details.append((name, first))
    print(render_table(
        ["ablation", "states", "depth", "time", "result"], rows
    ))
    for name, violation in details:
        print(f"\n--- counterexample for: {name} ---")
        print(violation.describe())

    if not full:
        print("\n(run with --full for the R2/R3/OVERLAP hunts; "
              "they take a few minutes)")


if __name__ == "__main__":
    main(full="--full" in sys.argv[1:])
