#!/usr/bin/env python3
"""Chaos-test the replicated KV store, Jepsen-style.

A seeded nemesis run: client load against the simulated cluster while
faults are injected -- message drops, duplication, reordering, a
network partition around the leader, leader crash/restart cycles, and
(optionally) the Fig. 16 5→3→5 membership walk under churn.  Every run
ends with two checks:

* ``check_safety()``: committed prefixes agree across replicas, and no
  client request committed twice (at-most-once audit);
* a Wing–Gong linearizability check of the recorded client history.

Run:  python examples/chaos.py --seed 7 --ops 500 \\
          --faults drop=0.02,dup=0.02,reorder=0.1,partitions=1,crashes=2
      python examples/chaos.py --fig16 --ops 400 --seed 3

Exits non-zero if either check fails, so it doubles as a CI gate.
"""

import argparse
import sys
import time

from repro.runtime import (
    NemesisConfig,
    NetworkConditions,
    fig16_chaos_config,
    run_nemesis,
)


def parse_faults(spec: str) -> dict:
    """Parse ``drop=0.02,dup=0.02,reorder=0.1,partitions=1,crashes=2``."""
    known = {"drop", "dup", "reorder", "partitions", "crashes"}
    out = {"drop": 0.0, "dup": 0.0, "reorder": 0.0, "partitions": 0, "crashes": 0}
    if not spec:
        return out
    for part in spec.split(","):
        key, _, value = part.partition("=")
        key = key.strip()
        if key not in known:
            raise SystemExit(
                f"unknown fault {key!r}; expected one of {sorted(known)}"
            )
        out[key] = float(value) if key in ("drop", "dup", "reorder") else int(value)
    return out


def build_config(args: argparse.Namespace) -> NemesisConfig:
    if args.fig16:
        config = fig16_chaos_config(seed=args.seed, ops=args.ops)
        return config
    faults = parse_faults(args.faults)
    crashes = int(faults["crashes"])
    crash_at = tuple(
        (i + 1) * args.ops // (crashes + 2) for i in range(crashes)
    )
    partition_at = None
    if faults["partitions"]:
        partition_at = (3 * args.ops) // 8
        while partition_at in crash_at:
            partition_at += 1
    return NemesisConfig(
        seed=args.seed,
        ops=args.ops,
        conditions=NetworkConditions(
            drop_prob=faults["drop"],
            duplicate_prob=faults["dup"],
            reorder_prob=faults["reorder"],
            reorder_window_ms=2.0,
        ),
        crash_leader_at=crash_at,
        partition_at=partition_at,
        partition_ms=40.0,
    )


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=7, help="run seed")
    parser.add_argument("--ops", type=int, default=500, help="client operations")
    parser.add_argument(
        "--faults",
        default="drop=0.02,dup=0.02,reorder=0.1,partitions=1,crashes=2",
        help="fault spec: drop=P,dup=P,reorder=P,partitions=N,crashes=N",
    )
    parser.add_argument(
        "--fig16",
        action="store_true",
        help="run the Fig. 16 5→3→5 reconfiguration trajectory under churn",
    )
    parser.add_argument(
        "--bundle-dir",
        default=None,
        help="write a replayable violation bundle here if a check fails "
        "(view it with examples/trace_view.py)",
    )
    return parser.parse_args()


def main(
    seed: int = 7,
    ops: int = 500,
    faults: str = "drop=0.02,dup=0.02,reorder=0.1,partitions=1,crashes=2",
    fig16: bool = False,
    bundle_dir: str = None,
) -> int:
    args = argparse.Namespace(seed=seed, ops=ops, faults=faults, fig16=fig16)
    config = build_config(args)
    config.bundle_dir = bundle_dir
    print(
        f"nemesis: seed={config.seed} ops={config.ops} "
        f"drop={config.conditions.drop_prob} "
        f"dup={config.conditions.duplicate_prob} "
        f"reorder={config.conditions.reorder_prob} "
        f"crashes@{config.crash_leader_at} "
        f"partition@{config.partition_at} "
        f"reconfigs={len(config.reconfig_trajectory)}"
    )
    started = time.perf_counter()
    result = run_nemesis(config)
    wall = time.perf_counter() - started

    print(result.describe())
    throughput = (
        result.stats.ops_completed / (result.stats.sim_ms / 1000.0)
        if result.stats.sim_ms
        else 0.0
    )
    print(f"  throughput: {throughput:.0f} ops/sim-second ({wall:.2f}s wall)")
    if not result.ok:
        print("FAILED: safety or linearizability violation", file=sys.stderr)
        if result.bundle_path is not None:
            print(
                f"violation bundle: {result.bundle_path} "
                "(render it with examples/trace_view.py)",
                file=sys.stderr,
            )
        return 1
    print("all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(**vars(parse_args())))
