#!/usr/bin/env python3
"""Replacing a dead server without stopping the world.

The paper's introduction motivates reconfiguration with exactly this
operational story: "server failures are inevitable in distributed
settings, so a method for safely and efficiently adjusting the
membership is essential."  This example plays it end to end on the
simulated cluster:

1. a 3-node cluster serves client requests;
2. the leader crashes mid-stream; the client driver fails over to a new
   leader and keeps going;
3. the dead node is removed by hot reconfiguration (R3 forces a
   committed entry of the new term first -- visible below);
4. a fresh node joins, catching up on the full log inline;
5. safety is checked across all replicas at the end.

Run:  python examples/failover_replacement.py
"""

import statistics

from repro.runtime import Cluster, FailoverDriver
from repro.schemes import RaftSingleNodeScheme


def main() -> None:
    cluster = Cluster(
        frozenset({1, 2, 3}),
        RaftSingleNodeScheme(),
        seed=11,
        extra_nodes={4},
    )
    assert cluster.elect(1)
    driver = FailoverDriver(cluster, leader=1)
    print(f"cluster {{1,2,3}} up, leader S{driver.leader}\n")

    print("== Normal operation ==")
    for i in range(10):
        driver.submit(("put", f"k{i}", i))
    healthy = [r.latency_ms for r in cluster.records[-10:]]
    print(f"10 requests, median {statistics.median(healthy):.3f} ms\n")

    print("== Leader S1 crashes ==")
    crash_time = cluster.sim.now
    cluster.crash(1)
    record = driver.submit(("put", "during-outage", True))
    event = driver.events[-1]
    print(
        f"client failed over: S{event.old_leader} -> S{event.new_leader} "
        f"({event.elections_tried} election(s)); next request served "
        f"{record.completed_ms - crash_time:.3f} ms after the crash\n"
    )

    print("== Removing the dead node (hot reconfiguration) ==")
    before = sorted(cluster.servers[driver.leader].config())
    driver.reconfigure(frozenset({2, 3}))
    print(f"config {before} -> [2, 3] "
          f"(R3 made the new leader commit a no-op of its term first)\n")

    print("== Adding replacement node S4 ==")
    driver.reconfigure(frozenset({2, 3, 4}))
    for i in range(10, 20):
        driver.submit(("put", f"k{i}", i))
    cluster.sync_followers(driver.leader)
    print(f"S4 log length after catch-up: {len(cluster.servers[4].log)} "
          f"(leader: {len(cluster.servers[driver.leader].log)})\n")

    print("== Final state ==")
    violations = cluster.check_safety()
    print("replicated state safety:", "OK" if not violations else violations)
    lats = cluster.latencies()
    print(f"{len(lats)} requests completed, mean {statistics.mean(lats):.3f} ms, "
          f"max {max(lats):.3f} ms")
    print(f"leader changes: {len(driver.events)}")
    # The crashed node's durable log is intact but stale; on restart it
    # would catch up like any follower.
    cluster.restart(1)
    print(f"S1 restarted with {len(cluster.servers[1].log)} durable entries "
          f"(will catch up on next broadcast)")


if __name__ == "__main__":
    main()
