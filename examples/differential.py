#!/usr/bin/env python3
"""Differential model checking across the seven reconfiguration schemes.

Adore's safety proof is parameterized over the reconfiguration scheme,
so every scheme runs on the same Adore semantics -- and can therefore
be compared head-to-head: identical exploration budgets, each design
rule (R2, R3, OVERLAP, ``insertBtw``) ablated in turn, and a record of
who survives what.  The headline result is the MongoDB logless scheme:
its protocol carries its own analogues of R2/R3 as enabling conditions
(the Q1 config-quorum and Q2 oplog-commitment checks), so ablating
Adore's rules leaves it SAFE where Raft single-node falls to the
Fig. 4 counterexample.

Run:  python examples/differential.py           (small smoke budgets)
      python examples/differential.py --full    (Fig. 4-class budgets)
      python examples/differential.py --json report.json
"""

import argparse
import sys
from typing import Optional, Sequence

from repro.mc.differential import (
    ABLATIONS,
    DEFAULT_BUDGETS,
    SMOKE_BUDGETS,
    default_scenarios,
    run_differential,
)


def main(
    full: bool = False,
    json_path: Optional[str] = None,
    workers: int = 1,
    schemes: Optional[Sequence[str]] = None,
    ablations: Optional[Sequence[str]] = None,
    expect_separation: bool = False,
) -> int:
    budgets = DEFAULT_BUDGETS if full else SMOKE_BUDGETS
    max_states = 250_000 if full else 50_000
    scenarios = default_scenarios()
    if schemes is not None:
        scenarios = [s for s in scenarios if s.name in set(schemes)]
    mode = "full (Fig. 4-class budgets)" if full else "smoke budgets"
    print(f"== Differential check, {len(scenarios)} schemes, {mode} ==\n")
    report = run_differential(
        scenarios=scenarios,
        budgets=budgets,
        ablations=tuple(ablations) if ablations else ABLATIONS,
        max_states=max_states,
        workers=workers,
        progress=lambda message: print(f"  {message}"),
    )
    print()
    print(report.render())

    deaths = [rec for rec in report.records if not rec.safe]
    print(
        f"\n{len(deaths)} violations found across "
        f"{len(report.records)} (scheme, ablation) cells."
    )
    separating = []
    names = {scenario.name for scenario in scenarios}
    if {"raft-single-node", "mongo-logless"} <= names:
        separating = report.separations("raft-single-node", "mongo-logless")
        if separating:
            print(
                "ablations separating mongo-logless from raft-single-node: "
                + ", ".join(separating)
            )
        else:
            print(
                "no separating ablation at this budget -- the Fig. 4-class "
                "separation (logless survives no-r3, raft dies) needs --full"
            )

    if json_path:
        with open(json_path, "w") as handle:
            handle.write(report.to_json())
        print(f"machine-readable report written to {json_path}")

    # Self-checks (the CI gate): an intact scheme must never violate
    # safety, and --expect-separation demands at least one ablation on
    # which raft-single-node dies while mongo-logless stays SAFE.
    intact_deaths = [
        rec.scheme for rec in report.records
        if rec.ablation == "intact" and not rec.safe
    ]
    if intact_deaths:
        print(f"FAIL: intact violation(s): {', '.join(intact_deaths)}")
        return 1
    if expect_separation and not separating:
        print("FAIL: expected a raft/logless separating ablation, found none")
        return 1
    return 0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full",
        action="store_true",
        help="use the Fig. 4-class budgets (minutes, shows the "
        "logless/raft no-r3 separation)",
    )
    parser.add_argument("--json", metavar="PATH", help="write the JSON report")
    parser.add_argument(
        "--workers", type=int, default=1,
        help="parallel workers per cell (demotes guided search to bfs)",
    )
    parser.add_argument(
        "--scheme", action="append", dest="schemes", metavar="NAME",
        help="restrict to named schemes (repeatable)",
    )
    parser.add_argument(
        "--ablation", action="append", dest="ablations", metavar="NAME",
        choices=ABLATIONS, help="restrict to named ablations (repeatable)",
    )
    parser.add_argument(
        "--expect-separation", action="store_true",
        help="exit non-zero unless some ablation separates "
        "mongo-logless from raft-single-node",
    )
    args = parser.parse_args()
    sys.exit(main(
        full=args.full,
        json_path=args.json,
        workers=args.workers,
        schemes=args.schemes,
        ablations=args.ablations,
        expect_separation=args.expect_separation,
    ))
