#!/usr/bin/env python3
"""A replicated key-value store with zero-downtime reconfiguration.

This is the paper's motivating application (Section 2.2's distributed
KV store) running on the executable stack: the verified-model-faithful
Raft specification handlers, scheduled over a discrete-event simulated
network, with *hot* reconfiguration -- client traffic keeps flowing
while the membership changes 3 → 4 → 5 → 4 nodes.

Run:  python examples/kvstore_cluster.py
"""

import statistics

from repro.runtime import ReplicatedKV
from repro.schemes import RaftSingleNodeScheme


def main() -> None:
    kv = ReplicatedKV(
        frozenset({1, 2, 3}),
        RaftSingleNodeScheme(),
        seed=42,
        extra_nodes={4, 5},
    )
    print(f"cluster up, leader = S{kv.leader}\n")

    print("== Writing under the initial 3-node configuration ==")
    for i in range(20):
        kv.put(f"user:{i}", {"id": i, "balance": 100 + i})
    base = statistics.median(kv.cluster.latencies()[-20:])
    print(f"20 puts done; median latency {base:.3f} ms (simulated)\n")

    print("== Growing to 4 nodes while serving traffic ==")
    lat = kv.reconfigure(frozenset({1, 2, 3, 4}))
    print(f"reconfig committed in {lat:.3f} ms (new node catches up inline)")
    for i in range(20, 40):
        kv.put(f"user:{i}", {"id": i, "balance": 100 + i})
    print(f"20 more puts; median latency "
          f"{statistics.median(kv.cluster.latencies()[-20:]):.3f} ms\n")

    print("== Growing to 5 nodes ==")
    lat = kv.reconfigure(frozenset({1, 2, 3, 4, 5}))
    print(f"reconfig committed in {lat:.3f} ms")
    kv.put("checkpoint", True)

    print("\n== Shrinking back to 4 nodes (drop S5) ==")
    lat = kv.reconfigure(frozenset({1, 2, 3, 4}))
    print(f"reconfig committed in {lat:.3f} ms\n")

    for i in range(40, 50):
        kv.put(f"user:{i}", {"id": i, "balance": 100 + i})
    kv.delete("user:0")
    kv.sync()

    print("== Consistency check across replicas ==")
    leader_view = kv.snapshot()
    print(f"leader sees {len(leader_view)} keys; user:1 =",
          leader_view["user:1"])
    for nid in (1, 2, 3, 4):
        view = kv.snapshot_at(nid)
        prefix_ok = all(leader_view.get(k) == v for k, v in view.items())
        print(f"  S{nid}: {len(view)} keys, prefix-consistent: {prefix_ok}")

    violations = kv.cluster.check_safety()
    print("\nreplicated state safety:", "OK" if not violations else violations)
    lats = kv.cluster.latencies()
    print(f"{len(lats)} requests total, mean latency "
          f"{statistics.mean(lats):.3f} ms, max {max(lats):.3f} ms")


if __name__ == "__main__":
    main()
