"""Legacy setup shim: this environment lacks the ``wheel`` package, so
PEP 660 editable installs fail; ``pip install -e . --no-use-pep517``
uses this file instead.  Metadata mirrors pyproject.toml.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Python reproduction of 'Adore: Atomic Distributed Objects with "
        "Certified Reconfiguration' (PLDI 2022)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
