"""Tests for the multi-Paxos-style protocol variant."""

import pytest

from repro.paxos import BALLOT_MODULUS, PaxosServer, PaxosSystem, PrepareReq, Promise, ballot_for
from repro.raft import LEADER, LogEntry
from repro.schemes import RaftSingleNodeScheme

CONF = frozenset({1, 2, 3})
SCHEME = RaftSingleNodeScheme()


def entry(time, vrsn, payload="m", is_config=False):
    return LogEntry(time=time, vrsn=vrsn, payload=payload, is_config=is_config)


class TestBallots:
    def test_ballots_are_owned_and_increasing(self):
        b1 = ballot_for(1, 0, BALLOT_MODULUS)
        b2 = ballot_for(1, b1, BALLOT_MODULUS)
        assert b2 > b1
        assert b1 % BALLOT_MODULUS == b2 % BALLOT_MODULUS == 1

    def test_distinct_nodes_never_collide(self):
        seen = set()
        for nid in (1, 2, 3, 4):
            for above in (0, 5, 100):
                ballot = ballot_for(nid, above, BALLOT_MODULUS)
                assert ballot % BALLOT_MODULUS == nid % BALLOT_MODULUS
                seen.add(ballot)
        assert len(seen) == len(set(seen))

    def test_invalid_modulus(self):
        with pytest.raises(ValueError):
            ballot_for(1, 0, 0)


class TestPaxosElection:
    def test_promise_is_unconditional_for_fresh_ballot(self):
        acceptor = PaxosServer(nid=2, conf0=CONF)
        acceptor.log = (entry(1, 1), entry(1, 2))  # better log than candidate
        (promise,) = acceptor.handle(
            PrepareReq(frm=1, to=2, time=65), SCHEME
        )
        assert isinstance(promise, Promise)
        assert promise.log == acceptor.log  # reports its log, no denial

    def test_candidate_adopts_best_promised_log(self):
        candidate = PaxosServer(nid=1, conf0=CONF)
        candidate.start_election(SCHEME)
        better = (entry(1, 1, "x"),)
        candidate.handle(
            Promise(frm=2, to=1, time=candidate.time, log=better), SCHEME
        )
        assert candidate.role == LEADER
        assert candidate.log == better

    def test_candidate_keeps_own_log_when_best(self):
        candidate = PaxosServer(nid=1, conf0=CONF)
        candidate.log = (entry(1, 1, "mine"),)
        candidate.time = 1
        candidate.start_election(SCHEME)
        candidate.handle(
            Promise(frm=3, to=1, time=candidate.time, log=()), SCHEME
        )
        assert candidate.role == LEADER
        assert candidate.log[0].payload == "mine"

    def test_stale_prepare_ignored(self):
        acceptor = PaxosServer(nid=2, conf0=CONF, time=100)
        assert acceptor.handle(PrepareReq(frm=1, to=2, time=50), SCHEME) == []

    def test_quorum_judged_against_adopted_config(self):
        # The promised log carries a 2-node config: {1, 2} is a quorum
        # of it even though conf0 has three members.
        candidate = PaxosServer(nid=1, conf0=CONF)
        candidate.start_election(SCHEME)
        promised = (entry(1, 1, frozenset({1, 2}), is_config=True),)
        candidate.handle(
            Promise(frm=2, to=1, time=candidate.time, log=promised), SCHEME
        )
        assert candidate.role == LEADER
        assert candidate.config() == frozenset({1, 2})


class TestPaxosSystem:
    def test_election_commit_cycle(self):
        system = PaxosSystem(CONF, SCHEME)
        system.elect(1)
        system.deliver_all()
        assert system.servers[1].role == LEADER
        system.invoke(1, "a")
        system.commit(1)
        system.deliver_all()
        assert system.servers[1].commit_len == 1
        assert system.check_log_safety() == []

    def test_uncommitted_entries_survive_leader_change(self):
        # The defining Paxos behaviour: a new leader *rescues* the old
        # leader's uncommitted entries via promises.
        system = PaxosSystem(CONF, SCHEME)
        system.elect(1)
        system.deliver_all()
        system.invoke(1, "committed")
        system.commit(1)
        system.deliver_all()
        system.invoke(1, "orphan")  # never replicated
        system.elect(2)
        # Promise from S1 carries the orphan entry.
        system.deliver_all()
        assert system.servers[2].role == LEADER
        payloads = [e.payload for e in system.servers[2].log]
        assert payloads == ["committed", "orphan"]

    def test_reconfiguration_guards_apply(self):
        system = PaxosSystem(CONF, SCHEME)
        system.elect(1)
        system.deliver_all()
        ok, reason = system.reconfig(1, frozenset({1, 2}))
        assert not ok and reason == "r3-denied"
        system.invoke(1, "warmup")
        system.commit(1)
        system.deliver_all()
        ok, reason = system.reconfig(1, frozenset({1, 2}))
        assert ok

    def test_fig4_analog_without_r3(self):
        """The single-node bug reproduces in the Paxos variant too:
        promises transfer logs, but the divergent quorums never talk."""
        nodes = frozenset({1, 2, 3, 4})
        system = PaxosSystem(nodes, SCHEME, enforce_r3=False)
        # S1 elected (votes 2, 3), reconfigures {1,2,3}, fails to replicate.
        system.elect(1)
        system.deliver_all(lambda m: {m.frm, m.to} <= {1, 2, 3})
        assert system.servers[1].role == LEADER
        assert system.reconfig(1, frozenset({1, 2, 3}))[0]
        # S2 elected with promises from 3, 4 (their logs are empty, so
        # S1's reconfig stays invisible), removes S3, commits with S4.
        system.elect(2)
        system.deliver_all(lambda m: {m.frm, m.to} <= {2, 3, 4})
        assert system.servers[2].role == LEADER
        assert system.reconfig(2, frozenset({1, 2, 4}))[0]
        system.commit(2)
        system.deliver_all(lambda m: {m.frm, m.to} <= {2, 4})
        assert system.servers[2].commit_len == 1
        # S1 campaigns again; S3 promises (its log is empty -- it never
        # saw S2's entries); quorum vs S1's own config {1,2,3}.
        system.elect(1)
        system.deliver_all(lambda m: {m.frm, m.to} <= {1, 3})
        assert system.servers[1].role == LEADER
        system.invoke(1, "divergent")
        system.commit(1)
        system.deliver_all(lambda m: {m.frm, m.to} <= {1, 3})
        violations = system.check_log_safety()
        assert violations, system.describe()

    def test_fig4_analog_blocked_with_r3(self):
        nodes = frozenset({1, 2, 3, 4})
        system = PaxosSystem(nodes, SCHEME, enforce_r3=True)
        system.elect(1)
        system.deliver_all()
        ok, reason = system.reconfig(1, frozenset({1, 2, 3}))
        assert not ok and reason == "r3-denied"

    def test_replay_works_for_paxos(self):
        system = PaxosSystem(CONF, SCHEME)
        system.elect(1)
        system.deliver_all()
        system.invoke(1, "a")
        system.commit(1)
        system.deliver_all()
        clone = PaxosSystem.replay(CONF, SCHEME, system.trace)
        for nid in CONF:
            assert clone.servers[nid].snapshot() == system.servers[nid].snapshot()


class TestPaxosSimulation:
    def test_lockstep_relation_holds(self):
        from repro.refinement import PaxosSimulationChecker

        sim = PaxosSimulationChecker(CONF, SCHEME, extra_nodes=[4])
        sim.elect(1, [2, 3])
        sim.invoke(1, "a")
        sim.commit(1, [2, 3])
        sim.invoke(1, "orphan")
        # Leader change: 2 adopts 1's log (including the orphan) -- the
        # Adore side must agree via mostRecent.
        sim.elect(2, [1, 3])
        sim.commit(2, [1, 3])
        sim.reconfig(2, frozenset({1, 2, 3, 4}))
        sim.commit(2, [1, 3, 4])
        assert sim.ok, sim.report()

    def test_randomized_paxos_simulation(self):
        import random

        from repro.core.errors import InvalidOperation
        from repro.refinement import PaxosSimulationChecker

        rng = random.Random(13)
        sim = PaxosSimulationChecker(CONF, SCHEME, extra_nodes=[4])
        nodes = [1, 2, 3, 4]
        counter = 0
        for _ in range(80):
            op = rng.choice(["elect", "invoke", "commit", "commit", "reconfig"])
            nid = rng.choice(nodes)
            others = [n for n in nodes if n != nid]
            group = rng.sample(others, rng.randint(0, len(others)))
            try:
                if op == "elect":
                    sim.elect(nid, group)
                elif op == "invoke":
                    counter += 1
                    sim.invoke(nid, f"m{counter}")
                elif op == "commit":
                    sim.commit(nid, group)
                else:
                    conf = frozenset(sim.sraft.servers[nid].config())
                    options = [conf | {n} for n in nodes if n not in conf]
                    options += [conf - {n} for n in conf if len(conf) > 1]
                    sim.reconfig(nid, rng.choice(options))
            except InvalidOperation:
                continue
        assert sim.ok, sim.report()


class TestModelBoundary:
    """The documented scope boundary of the Paxos mirror: partial commit
    deliveries create log coverage Adore's observer metadata cannot see,
    and a later promise-based adoption from such a receiver cannot be
    mirrored as a branch adoption.  The checker must *detect* this, not
    silently pass."""

    def test_partial_replication_salvage_is_detected(self):
        from repro.refinement import PaxosSimulationChecker
        from repro.refinement.simulation import SimulationChecker

        nodes = frozenset({1, 2, 3, 4})
        sim = PaxosSimulationChecker(nodes, SCHEME, raise_on_mismatch=False)
        sim.elect(1, [2, 3, 4])
        sim.invoke(1, "committed")
        sim.commit(1, [2, 3, 4])
        sim.invoke(1, "orphan")
        # Bypass the full-round enforcement to create the blind spot:
        # only node 2 receives the orphan; {1, 2} is NOT a quorum of
        # four, so no CCache records node 2's coverage.
        SimulationChecker.commit(sim, 1, [2])
        # Node 3 is elected with node 2 in its promise quorum and
        # salvages the orphan -- a log Adore's mostRecent cannot serve.
        record = sim.elect(3, [2, 4])
        assert not record.ok
        assert any("orphan" in d for d in record.discrepancies)

    def test_full_rounds_are_enforced_by_default(self):
        from repro.refinement import PaxosSimulationChecker

        sim = PaxosSimulationChecker(CONF, SCHEME)
        sim.elect(1, [2, 3])
        sim.invoke(1, "a")
        # Ask for a partial round; the Paxos mirror widens it.
        record = sim.commit(1, [2])
        assert record.ok
        assert "recv=[2, 3]" in record.description
