"""Integration tests: the spec served by real processes over real TCP.

These spawn ``python -m repro.net node`` subprocesses on ephemeral
localhost ports, drive them through the blocking client, and check the
recorded history with the same Wing-Gong linearizability checker the
simulator uses.  The kill-the-leader test is the tentpole payoff: a
SIGKILL to a live OS process, a real failover, and a history that
still linearizes.
"""

import os
import socket
import struct
import subprocess
import sys
import time

import pytest

from repro.net import allocate_ports
from repro.net.client import ClientTimeout, NetClient
from repro.net.procs import LocalCluster
from repro.net.wire import ClientRequest, ClientResponse, encode_frame
from repro.runtime.linearize import check_history


def _committed_prefixes_agree(cluster, probe):
    logs = {}
    for nid in cluster.nids:
        if cluster.handles[nid].alive:
            entries = probe.committed_log(nid)
            if entries is not None:
                logs[nid] = entries
    nids = sorted(logs)
    for i, a in enumerate(nids):
        for b in nids[i + 1:]:
            shared = min(len(logs[a]), len(logs[b]))
            assert logs[a][:shared] == logs[b][:shared], (
                f"S{a}/S{b} disagree on committed prefix"
            )
    return len(nids)


def test_allocate_ports_are_distinct_and_bindable():
    ports = allocate_ports(8)
    assert len(set(ports)) == 8
    for port in ports:
        sock = socket.socket()
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind(("127.0.0.1", port))
        sock.close()


def test_three_node_cluster_serves_linearizable_ops():
    with LocalCluster(nids=(1, 2, 3), seed=11) as cluster:
        cluster.wait_for_leader()
        with cluster.client(client_id="c0") as client:
            for i in range(20):
                client.put("x", i)
                assert client.get("x") == i
            client.add("counter", 5)
            client.add("counter", 7)
            assert client.get("counter") == 12
            client.delete("x")
            assert client.get("x") is None
            verdict = check_history(client.history)
            assert verdict.ok, verdict.describe()
            assert not client.history.pending()
        codes = cluster.shutdown()
    # SIGTERM produces a clean exit on every node.
    assert all(code == 0 for code in codes.values()), codes


def test_kill_the_leader_history_still_linearizes():
    with LocalCluster(nids=(1, 2, 3), seed=12) as cluster:
        leader = cluster.wait_for_leader()
        with cluster.client(client_id="c0", total_timeout_s=30.0) as client:
            for i in range(25):
                client.add("k", 1)
            cluster.kill(leader)  # SIGKILL a live OS process
            new_leader = cluster.wait_for_leader(exclude=(leader,))
            assert new_leader != leader
            for i in range(25):
                client.add("k", 1)
            assert client.get("k") == 50
            verdict = check_history(client.history)
            assert verdict.ok, verdict.describe()
            _committed_prefixes_agree(cluster, client)


def test_reconfiguration_trajectory_under_load():
    with LocalCluster(nids=(1, 2, 3, 4, 5), seed=13) as cluster:
        cluster.wait_for_leader()
        with cluster.client(client_id="c0", total_timeout_s=30.0) as client:
            trajectory = [
                (1, 2, 3, 4), (1, 2, 3), (1, 2, 3, 4), (1, 2, 3, 4, 5),
            ]
            total = 0
            for members in trajectory:
                for _ in range(5):
                    client.add("n", 1)
                    total += 1
                assert client.reconfigure(members) is True
                status = client.status(client.find_leader())
                assert sorted(status.members) == sorted(members)
            assert client.get("n") == total
            verdict = check_history(client.history)
            assert verdict.ok, verdict.describe()
            _committed_prefixes_agree(cluster, client)


def test_duplicate_request_applies_at_most_once():
    with LocalCluster(nids=(1, 2, 3), seed=14) as cluster:
        leader = cluster.wait_for_leader()
        with cluster.client(client_id="c0") as client:
            # The same (client_id, seq) delivered twice -- as after a
            # lost response and a retry -- must apply exactly once.
            request = ClientRequest(
                client_id="dup", seq=0, command=("add", "once", 1)
            )
            first = client._rpc(leader, request, timeout_s=5.0)
            assert isinstance(first, ClientResponse) and first.ok
            second = client._rpc(leader, request, timeout_s=5.0)
            assert isinstance(second, ClientResponse) and second.ok
            assert client.get("once") == 1


def test_malformed_frames_never_crash_a_node():
    with LocalCluster(nids=(1, 2, 3), seed=15) as cluster:
        cluster.wait_for_leader()
        nid = cluster.nids[0]
        host, port = cluster.addresses[nid]
        for payload in (
            b"\x00" * 12,                               # zero length + junk
            struct.pack(">I", 5) + b"garba",            # not JSON
            struct.pack(">I", 2**31),                   # absurd length
            encode_frame(ClientRequest("c", 0, ("put", "k", 1)))[:-3],
        ):
            sock = socket.create_connection((host, port), timeout=5)
            sock.sendall(payload)
            sock.close()
        # The node survived every one of them and still serves traffic.
        with cluster.client(client_id="after") as client:
            assert client.status(nid) is not None
            client.put("alive", True)
            assert client.get("alive") is True


def test_follower_redirects_clients_to_the_leader():
    with LocalCluster(nids=(1, 2, 3), seed=16) as cluster:
        leader = cluster.wait_for_leader()
        follower = next(n for n in cluster.nids if n != leader)
        with cluster.client(client_id="c0") as client:
            request = ClientRequest(
                client_id="c0", seq=999, command=("put", "k", 1)
            )
            reply = client._rpc(follower, request, timeout_s=5.0)
            assert isinstance(reply, ClientResponse)
            assert not reply.ok and reply.error == "not-leader"
            assert reply.leader_hint == leader
        # And the full client loop follows that hint to completion.
        with cluster.client(client_id="c1") as client:
            client._leader_guess = follower  # start aimed at the wrong node
            assert client.put("k", 2) is True


def test_client_gives_up_after_max_attempts():
    # A client aimed at a cluster that is entirely down must fail after
    # its attempt budget, not spin out the whole wall-clock deadline.
    port = allocate_ports(1)[0]  # allocated then released: nobody listens
    client = NetClient(
        {1: ("127.0.0.1", port)},
        client_id="one-shot",
        request_timeout_s=0.2,
        total_timeout_s=60.0,
        retry_delay_s=0.01,
        max_attempts=3,
    )
    started = time.monotonic()
    with pytest.raises(ClientTimeout, match="3 attempts"):
        client.request(("get", "k"))
    assert time.monotonic() - started < 10.0  # nowhere near 60s


def test_one_shot_cli_invocation_exits_nonzero_when_cluster_is_down():
    # Regression: ``python -m repro.net client`` one-shot invocations
    # used to spin until the 20s deadline when no node was reachable;
    # --max-attempts bounds them to a quick, clean non-zero exit.
    from repro.net.procs import _repro_pythonpath

    port = allocate_ports(1)[0]
    env = dict(os.environ, PYTHONPATH=_repro_pythonpath())
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro.net", "client",
            "--peers", f"1=127.0.0.1:{port}",
            "--max-attempts", "3",
            "get", "k",
        ],
        capture_output=True, text=True, timeout=60, env=env,
    )
    assert proc.returncode == 1
    assert "error:" in proc.stderr


def test_attempt_timeouts_clamp_to_the_total_deadline():
    # Regression: a node that accepts connections but never answers
    # must not stretch one operation to ``request_timeout_s`` when
    # ``total_timeout_s`` is shorter -- the last attempt used to
    # overshoot the total deadline by a full per-attempt timeout.
    listener = socket.socket()
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind(("127.0.0.1", 0))
    listener.listen(4)
    addr = listener.getsockname()
    try:
        client = NetClient(
            {1: addr}, client_id="c0",
            request_timeout_s=5.0, total_timeout_s=0.5,
        )
        started = time.monotonic()
        with pytest.raises(ClientTimeout):
            client.put("k", 1)
        elapsed = time.monotonic() - started
        assert elapsed < 2.0, (
            f"deadline overshot: {elapsed:.2f}s for a 0.5s budget"
        )
        client.close()
    finally:
        listener.close()


def test_timeout_leaves_operation_pending():
    with LocalCluster(nids=(1, 2, 3), seed=17) as cluster:
        cluster.wait_for_leader()
        with cluster.client(client_id="c0") as client:
            client.put("k", 1)
            # Kill a majority: the survivors cannot commit anything.
            cluster.kill(cluster.nids[0])
            cluster.kill(cluster.nids[1])
            client.total_timeout_s = 2.0
            with pytest.raises(ClientTimeout):
                client.put("k", 2)
            # Jepsen semantics: the op's outcome is unknown, so the
            # history keeps it pending rather than marking it failed.
            pending = client.history.pending()
            assert len(pending) == 1
            assert pending[0].op == "put" and pending[0].value == 2
