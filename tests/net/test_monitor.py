"""End-to-end runtime verification: live TCP cluster, live monitor.

The positive test runs the pre-fix spec (``repro.raft.buggy``, R3 off)
through the staged Fig. 4 schedule under client load and requires the
streaming monitor to flag the divergent-reconfig fork *while the
cluster is running*, then proves the written bundle replays offline to
the same verdict.  The control test drives the fixed spec through the
identical schedule and requires silence plus a legally completed
reconfiguration -- the pair is what makes the monitor a detector
rather than an alarm that always rings.
"""

import pytest

from repro.monitor.bundle import load_monitor_bundle, replay_bundle, verdict_matches
from repro.net.fig4 import run_fig4_live
from repro.net.procs import LocalCluster


def _drive_load(cluster, ops=10):
    with cluster.client(client_id="load", total_timeout_s=20.0) as client:
        for i in range(ops):
            client.put("k", i)


def test_monitor_flags_live_fig4_violation_and_bundle_replays(tmp_path):
    with LocalCluster(
        nids=(1, 2, 3), seed=21, spec="buggy", monitor=True,
        log_dir=str(tmp_path),
    ) as cluster:
        cluster.wait_for_leader()
        _drive_load(cluster)
        result = run_fig4_live(cluster)

        assert result.detected, result.describe()
        assert any(
            "ccache-in-rcache-fork" in line for line in result.violations
        ), result.violations

        # The monitor's own status carries the same verdict.
        status = cluster.monitor_status()
        assert status is not None and not status.ok
        assert tuple(status.violations) == tuple(result.violations)
        assert status.gaps == 0

        # The bundle names the offending event and replays to the
        # recorded verdict with a fresh engine.
        assert result.bundle is not None
        manifest, journal = load_monitor_bundle(result.bundle)
        assert manifest["violation"]["event"]["kind"] == "log_advance"
        assert journal, "bundle trace must not be empty"
        engine, verdict = replay_bundle(result.bundle)
        assert verdict is not None
        assert not engine.ok
        assert verdict_matches(result.bundle)
        cluster.shutdown()


def test_monitor_stays_clean_on_fixed_spec_under_same_schedule(tmp_path):
    with LocalCluster(
        nids=(1, 2, 3), seed=22, monitor=True, log_dir=str(tmp_path),
    ) as cluster:
        cluster.wait_for_leader()
        _drive_load(cluster)
        result = run_fig4_live(cluster, expect_violation=False)

        assert not result.detected, result.describe()
        # R3 makes the same request *safe*, not impossible: the legal
        # reconfiguration completes.
        assert result.reconfig_outcome == "committed"

        status = cluster.monitor_status()
        assert status is not None and status.ok
        assert status.entries > 0 and status.commits > 0
        assert status.gaps == 0
        assert status.bundle is None
        cluster.shutdown()


def test_monitor_counts_a_plain_workload(tmp_path):
    # No schedule at all: the monitor just watches replication and
    # stays clean with every node streaming.
    with LocalCluster(
        nids=(1, 2, 3), seed=23, monitor=True, log_dir=str(tmp_path),
    ) as cluster:
        cluster.wait_for_leader()
        _drive_load(cluster, ops=15)
        status = cluster.monitor_status()
        assert status is not None and status.ok
        assert set(status.nodes) == {1, 2, 3}
        assert status.entries >= 15
        cluster.shutdown()
