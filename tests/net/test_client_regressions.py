"""Client-layer regressions pinned by tests that fail if reverted.

Two bugs found while building the sharded client on top of this layer:

* ``merge_histories`` renumbered operations *in place*, corrupting the
  source histories' op_ids -- fatal once histories are merged more than
  once (per-group first, then across groups).
* ``_connect``/``_rpc`` chose the timeout with ``timeout_s or
  default``: an explicit ``0.0`` (a total-deadline remainder clamped to
  zero) is falsy, so the call silently got the full default timeout and
  the last attempt of a request could overshoot its total deadline.
"""

import socket
import time

import pytest

from repro.net.client import NetClient, merge_histories
from repro.net.wire import StatusRequest
from repro.runtime.history import History


# ----------------------------------------------------------------------
# merge_histories must not mutate its sources
# ----------------------------------------------------------------------


def _history(client, *keys):
    history = History()
    for key in keys:
        op = history.invoke(client, "put", key, 1, time.monotonic() * 1000)
        history.complete(op, time.monotonic() * 1000)
    return history


def test_merge_histories_leaves_sources_untouched():
    a = _history("c-a", "x", "y")
    b = _history("c-b", "z")
    a_ids = [op.op_id for op in a.operations]
    b_ids = [op.op_id for op in b.operations]

    merged = merge_histories([a, b])

    assert len(merged) == 3
    assert [op.op_id for op in merged.operations] == [0, 1, 2]
    # The sources keep their own numbering...
    assert [op.op_id for op in a.operations] == a_ids
    assert [op.op_id for op in b.operations] == b_ids
    # ...because the merged record holds copies, not the same objects.
    merged_set = {id(op) for op in merged.operations}
    for source in (a, b):
        for op in source.operations:
            assert id(op) not in merged_set


def test_merge_histories_is_repeatable():
    # Merging per-group merges again across groups (what the sharded
    # scenario does) must give the same record every time.
    a = _history("c-a", "x")
    b = _history("c-b", "y")
    once = merge_histories([a, b])
    twice = merge_histories([merge_histories([a]), merge_histories([b])])
    assert [
        (op.client, op.op_id, op.key) for op in once.operations
    ] == [(op.client, op.op_id, op.key) for op in twice.operations]


# ----------------------------------------------------------------------
# Explicit zero timeouts must stay zero (not become the default)
# ----------------------------------------------------------------------


def test_rpc_honors_explicit_zero_timeout():
    # Inject one end of a socketpair as the cached connection: the far
    # end never answers, so with ``timeout_s=0.0`` the read must fail
    # immediately.  The falsy-timeout bug substituted the client's full
    # default (here: 30s) and hung.
    near, far = socket.socketpair()
    try:
        client = NetClient(
            {1: ("127.0.0.1", 1)}, client_id="t", request_timeout_s=30.0
        )
        client._conns[1] = near
        started = time.monotonic()
        with pytest.raises(OSError):
            client._rpc(1, StatusRequest(), timeout_s=0.0)
        assert time.monotonic() - started < 2.0
    finally:
        far.close()
        near.close()


def test_connect_honors_explicit_zero_timeout():
    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    try:
        client = NetClient(
            {1: listener.getsockname()}, client_id="t",
            request_timeout_s=30.0,
        )
        started = time.monotonic()
        try:
            sock = client._connect(1, timeout_s=0.0)
        except OSError:
            # A non-blocking loopback connect may legitimately raise
            # EINPROGRESS -- either way it must not take the default.
            pass
        else:
            assert sock.gettimeout() == 0.0
        assert time.monotonic() - started < 2.0
        client.close()
    finally:
        listener.close()
