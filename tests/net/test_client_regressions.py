"""Client-layer regressions pinned by tests that fail if reverted.

Bugs found while building the sharded client on top of this layer:

* ``merge_histories`` renumbered operations *in place*, corrupting the
  source histories' op_ids -- fatal once histories are merged more than
  once (per-group first, then across groups).
* ``_connect``/``_rpc`` chose the timeout with ``timeout_s or
  default``: an explicit ``0.0`` (a total-deadline remainder clamped to
  zero) is falsy, so the call silently got the full default timeout and
  the last attempt of a request could overshoot its total deadline.
* ``request`` treated a ``wrong-shard`` reply as proof the command
  never entered *any* log, when it only proves non-admission at the
  responding node.  An earlier attempt of the same request can time out
  after the true leader admitted it (or get bounced ``admitted`` by a
  dethroned leader post-append); re-routing then double-applies the
  command across groups.  A wrong-shard reply after any such ambiguous
  attempt must surface as :class:`ClientTimeout`, never
  :class:`WrongShard`.
"""

import socket
import threading
import time

import pytest

from repro.net.client import (
    ClientTimeout,
    NetClient,
    WrongShard,
    merge_histories,
)
from repro.net.wire import (
    ClientResponse,
    StatusRequest,
    decode_message,
    encode_frame,
)
from repro.runtime.history import History


# ----------------------------------------------------------------------
# merge_histories must not mutate its sources
# ----------------------------------------------------------------------


def _history(client, *keys):
    history = History()
    for key in keys:
        op = history.invoke(client, "put", key, 1, time.monotonic() * 1000)
        history.complete(op, time.monotonic() * 1000)
    return history


def test_merge_histories_leaves_sources_untouched():
    a = _history("c-a", "x", "y")
    b = _history("c-b", "z")
    a_ids = [op.op_id for op in a.operations]
    b_ids = [op.op_id for op in b.operations]

    merged = merge_histories([a, b])

    assert len(merged) == 3
    assert [op.op_id for op in merged.operations] == [0, 1, 2]
    # The sources keep their own numbering...
    assert [op.op_id for op in a.operations] == a_ids
    assert [op.op_id for op in b.operations] == b_ids
    # ...because the merged record holds copies, not the same objects.
    merged_set = {id(op) for op in merged.operations}
    for source in (a, b):
        for op in source.operations:
            assert id(op) not in merged_set


def test_merge_histories_is_repeatable():
    # Merging per-group merges again across groups (what the sharded
    # scenario does) must give the same record every time.
    a = _history("c-a", "x")
    b = _history("c-b", "y")
    once = merge_histories([a, b])
    twice = merge_histories([merge_histories([a]), merge_histories([b])])
    assert [
        (op.client, op.op_id, op.key) for op in once.operations
    ] == [(op.client, op.op_id, op.key) for op in twice.operations]


# ----------------------------------------------------------------------
# Explicit zero timeouts must stay zero (not become the default)
# ----------------------------------------------------------------------


def test_rpc_honors_explicit_zero_timeout():
    # Inject one end of a socketpair as the cached connection: the far
    # end never answers, so with ``timeout_s=0.0`` the read must fail
    # immediately.  The falsy-timeout bug substituted the client's full
    # default (here: 30s) and hung.
    near, far = socket.socketpair()
    try:
        client = NetClient(
            {1: ("127.0.0.1", 1)}, client_id="t", request_timeout_s=30.0
        )
        client._conns[1] = near
        started = time.monotonic()
        with pytest.raises(OSError):
            client._rpc(1, StatusRequest(), timeout_s=0.0)
        assert time.monotonic() - started < 2.0
    finally:
        far.close()
        near.close()


def _recv_exact(conn, n):
    chunks = []
    while n:
        chunk = conn.recv(n)
        if not chunk:
            raise ConnectionError("client went away")
        chunks.append(chunk)
        n -= len(chunk)
    return b"".join(chunks)


class _ScriptedNode(threading.Thread):
    """A fake node socket replying to each request per a script.

    Each received frame consumes the next script item: ``None``
    swallows the request (the client's attempt times out on its
    per-attempt budget), a callable gets the decoded request and
    returns the :class:`ClientResponse` to send back.  The last item
    repeats once the script is exhausted.
    """

    def __init__(self, *script):
        super().__init__(daemon=True)
        self.listener = socket.socket()
        self.listener.bind(("127.0.0.1", 0))
        self.listener.listen(8)
        self.address = self.listener.getsockname()
        self.script = list(script)
        self.requests = []
        self._halt = threading.Event()

    def run(self):
        self.listener.settimeout(0.1)
        while not self._halt.is_set():
            try:
                conn, _ = self.listener.accept()
            except OSError:
                continue
            with conn:
                conn.settimeout(5.0)
                try:
                    while not self._halt.is_set():
                        header = _recv_exact(conn, 4)
                        length = int.from_bytes(header, "big")
                        request = decode_message(_recv_exact(conn, length))
                        self.requests.append(request)
                        item = (self.script.pop(0) if len(self.script) > 1
                                else self.script[0])
                        if item is None:
                            continue  # swallow: the attempt times out
                        conn.sendall(encode_frame(item(request)))
                except OSError:
                    pass  # client dropped the connection; accept anew

    def close(self):
        self._halt.set()
        self.listener.close()
        self.join(timeout=5.0)

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, *exc):
        self.close()


def _wrong_shard(request):
    return ClientResponse(
        client_id=request.client_id, seq=request.seq, ok=False,
        error="wrong-shard", table_version=7,
    )


def _not_leader(admitted):
    def reply(request):
        return ClientResponse(
            client_id=request.client_id, seq=request.seq, ok=False,
            error="not-leader", leader_hint=None, admitted=admitted,
        )
    return reply


def _fast_client(*addresses, **kwargs):
    kwargs.setdefault("request_timeout_s", 0.3)
    kwargs.setdefault("total_timeout_s", 1.5)
    kwargs.setdefault("retry_delay_s", 0.01)
    return NetClient(
        {nid: address for nid, address in enumerate(addresses, start=1)},
        client_id="ambig-c", **kwargs,
    )


def test_wrong_shard_after_timed_out_attempt_is_a_timeout():
    # Attempt 1 is swallowed (the node may have admitted the command
    # pre-freeze); attempt 2 gets wrong-shard.  Outcome unknown: must
    # raise ClientTimeout so the routing layer never re-routes it.
    with _ScriptedNode(None, _wrong_shard) as node:
        with _fast_client(node.address) as client:
            with pytest.raises(ClientTimeout):
                client.request(("put", "k", 1), table_version=1)
        assert len(node.requests) >= 2


def test_wrong_shard_after_admitted_bounce_is_a_timeout():
    # A dethroned leader bounced the request *after* appending it
    # (admitted=True): the entry may still commit, so a later
    # wrong-shard reply must not claim group-wide non-admission.
    with _ScriptedNode(_not_leader(admitted=True), _wrong_shard) as node:
        with _fast_client(node.address) as client:
            with pytest.raises(ClientTimeout):
                client.request(("put", "k", 1), table_version=1)


def test_wrong_shard_after_definitive_refusals_still_reroutes():
    # Every attempt was a clean pre-admission refusal: wrong-shard
    # really does prove the command entered no log, and propagates so
    # the routing layer can re-route it.
    with _ScriptedNode(_not_leader(admitted=False), _wrong_shard) as node:
        with _fast_client(node.address) as client:
            with pytest.raises(WrongShard) as exc:
                client.request(("put", "k", 1), table_version=1)
            assert exc.value.table_version == 7


def test_wrong_shard_after_connection_refused_still_reroutes():
    # A connection that never came up cannot have delivered the
    # request: the failed attempt is definitive, not ambiguous.
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    dead_address = probe.getsockname()
    probe.close()
    with _ScriptedNode(_wrong_shard) as node:
        with _fast_client(dead_address, node.address) as client:
            with pytest.raises(WrongShard):
                client.request(("put", "k", 1), table_version=1)


def test_ambiguous_attempt_can_still_be_served_by_dedup():
    # After a swallowed attempt the client keeps retrying in-group; a
    # node that holds the entry serves its (possibly committed) result.
    def served(request):
        return ClientResponse(
            client_id=request.client_id, seq=request.seq, ok=True,
            result="v1",
        )

    with _ScriptedNode(None, served) as node:
        with _fast_client(node.address) as client:
            assert client.request(("put", "k", 1), table_version=1) == "v1"


def test_connect_honors_explicit_zero_timeout():
    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    try:
        client = NetClient(
            {1: listener.getsockname()}, client_id="t",
            request_timeout_s=30.0,
        )
        started = time.monotonic()
        try:
            sock = client._connect(1, timeout_s=0.0)
        except OSError:
            # A non-blocking loopback connect may legitimately raise
            # EINPROGRESS -- either way it must not take the default.
            pass
        else:
            assert sock.gettimeout() == 0.0
        assert time.monotonic() - started < 2.0
        client.close()
    finally:
        listener.close()
