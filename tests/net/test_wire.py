"""Property tests for the wire codec.

The contracts under test (ISSUE 4, satellite 1):

* for every message type, ``decode_message(encode_message(m)) == m``;
* truncated, garbage, and oversized frames raise a
  :class:`~repro.net.wire.ProtocolError` subclass -- never a bare
  exception and never a hang;
* the per-connection delta layer is transparent: a paired
  encoder/decoder reproduces every message exactly, whatever the log
  evolution between messages.
"""

import json
import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.snapshot import CompactLog, Snapshot
from repro.net.wire import (
    MAX_FRAME_BYTES,
    MAX_SNAPSHOT_CHUNKS,
    PROTOCOL_VERSION,
    ClientRequest,
    ClientResponse,
    DeltaDecoder,
    DeltaEncoder,
    FrameTooLarge,
    LogRequest,
    LogResponse,
    MalformedFrame,
    MonitorHello,
    MonitorStatusRequest,
    MonitorStatusResponse,
    PartitionRequest,
    PartitionResponse,
    PeerHello,
    ProtocolError,
    ReadProbe,
    ReadProbeAck,
    ShardDumpRequest,
    ShardDumpResponse,
    ShardOwnershipRequest,
    ShardOwnershipResponse,
    SnapshotChunk,
    StatusRequest,
    StatusResponse,
    TraceBatch,
    TruncatedFrame,
    UnencodableValue,
    VersionMismatch,
    decode_frame,
    decode_message,
    encode_frame,
    encode_message,
    pack_snapshot,
    snapshot_chunks,
    unpack_snapshot,
)
from repro.raft.messages import (
    CommitAck,
    CommitReq,
    ElectAck,
    ElectReq,
    LogEntry,
)

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

nids = st.integers(min_value=1, max_value=9)
terms = st.integers(min_value=0, max_value=50)
keys = st.text(min_size=1, max_size=8)
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**40), max_value=2**40),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=12),
)
#: Payloads as the runtime produces them: kvstore command tuples,
#: bare strings, and configurations (frozensets of node ids).
commands = st.one_of(
    st.tuples(st.just("put"), keys, scalars),
    st.tuples(st.just("add"), keys, st.integers(-100, 100)),
    st.tuples(st.just("delete"), keys),
    st.tuples(st.just("get"), keys),
    st.tuples(st.just("noop")),
    st.text(min_size=1, max_size=10),
)
configs = st.frozensets(nids, min_size=1, max_size=5)
request_ids = st.one_of(
    st.none(), st.tuples(st.text(min_size=1, max_size=8), st.integers(0, 999))
)


@st.composite
def log_entries(draw):
    is_config = draw(st.booleans())
    payload = draw(configs) if is_config else draw(commands)
    return LogEntry(
        time=draw(terms),
        vrsn=draw(st.integers(1, 20)),
        payload=payload,
        is_config=is_config,
        request_id=draw(request_ids),
    )


logs = st.lists(log_entries(), max_size=6).map(tuple)

elect_reqs = st.builds(ElectReq, frm=nids, to=nids, time=terms, log=logs)
elect_acks = st.builds(
    ElectAck, frm=nids, to=nids, time=terms, granted=st.booleans()
)
commit_reqs = st.builds(
    CommitReq, frm=nids, to=nids, time=terms, log=logs,
    commit_len=st.integers(0, 6),
)
commit_acks = st.builds(
    CommitAck, frm=nids, to=nids, time=terms, acked_len=st.integers(0, 6)
)
client_ids = st.text(min_size=1, max_size=10)
rpc_messages = st.one_of(
    st.builds(PeerHello, nid=nids),
    st.builds(
        ClientRequest, client_id=client_ids, seq=st.integers(0, 10_000),
        command=st.one_of(
            commands.filter(lambda c: isinstance(c, tuple)),
            st.tuples(st.just("reconfig"), configs),
        ),
        table_version=st.one_of(st.none(), st.integers(1, 100)),
    ),
    st.builds(
        ClientResponse, client_id=client_ids, seq=st.integers(0, 10_000),
        ok=st.booleans(), result=scalars,
        error=st.one_of(st.none(), st.sampled_from(
            ["not-leader", "timeout", "denied", "wrong-shard"]
        )),
        leader_hint=st.one_of(st.none(), nids),
        table_version=st.one_of(st.none(), st.integers(1, 100)),
        admitted=st.booleans(),
    ),
    st.builds(StatusRequest),
    st.builds(
        StatusResponse, nid=nids, role=st.sampled_from(
            ["follower", "candidate", "leader"]
        ),
        term=terms, commit_len=st.integers(0, 100),
        log_len=st.integers(0, 100),
        members=st.lists(nids, max_size=5).map(tuple),
        leader_hint=st.one_of(st.none(), nids),
    ),
    st.builds(LogRequest),
    st.builds(LogResponse, entries=logs),
    st.builds(
        ReadProbe, frm=nids, to=nids,
        probe=st.integers(0, 10**6), time=terms,
    ),
    st.builds(
        ReadProbeAck, frm=nids, to=nids,
        probe=st.integers(0, 10**6), time=terms,
    ),
    st.builds(MonitorHello, nid=nids),
    # Trace events travel as plain-JSON dicts (TraceEvent.to_dict()).
    st.builds(
        TraceBatch, nid=nids,
        events=st.lists(
            st.dictionaries(
                st.text(min_size=1, max_size=8),
                st.one_of(
                    st.integers(-5, 10**6), st.text(max_size=8),
                    st.booleans(), st.none(),
                ),
                max_size=4,
            ),
            max_size=3,
        ).map(tuple),
    ),
    st.builds(MonitorStatusRequest),
    st.builds(
        MonitorStatusResponse, ok=st.booleans(),
        events=st.integers(0, 10**6), entries=st.integers(0, 10**6),
        caches=st.integers(0, 10**6), commits=st.integers(0, 10**6),
        gaps=st.integers(0, 100),
        nodes=st.lists(nids, max_size=5).map(tuple),
        violations=st.lists(st.text(max_size=30), max_size=3).map(tuple),
        bundle=st.one_of(st.none(), st.text(max_size=20)),
    ),
    st.builds(
        PartitionRequest, blocked=st.lists(nids, max_size=4).map(tuple)
    ),
    st.builds(
        PartitionResponse, nid=nids,
        blocked=st.lists(nids, max_size=4).map(tuple),
    ),
    st.builds(
        ShardOwnershipRequest, version=st.integers(0, 100),
        ranges=st.lists(
            st.tuples(st.integers(0, 2**63), st.integers(1, 2**63))
            .map(lambda pair: (min(pair), max(pair)))
            .filter(lambda pair: pair[0] < pair[1]),
            max_size=4,
        ).map(tuple),
    ),
    st.builds(
        ShardOwnershipResponse, nid=nids, version=st.integers(0, 100)
    ),
    st.builds(
        ShardDumpRequest,
        lo=st.integers(0, 2**63 - 1), hi=st.integers(2**63, 2**64),
    ),
    st.builds(
        ShardDumpResponse, nid=nids,
        role=st.sampled_from(["follower", "candidate", "leader"]),
        commit_len=st.integers(0, 100), log_len=st.integers(0, 100),
        items=st.lists(
            st.tuples(keys, scalars), max_size=4
        ).map(lambda pairs: tuple(dict(pairs).items())),
        version=st.one_of(st.none(), st.integers(0, 100)),
        term=terms, commit_in_term=st.booleans(),
    ),
)
raft_messages = st.one_of(elect_reqs, elect_acks, commit_reqs, commit_acks)
messages = st.one_of(raft_messages, rpc_messages)

stores = st.dictionaries(keys, scalars, max_size=4)
sessions = st.dictionaries(client_ids, st.integers(0, 999), max_size=4)


@st.composite
def snapshots(draw):
    base = draw(st.integers(min_value=1, max_value=50))
    history = draw(st.lists(
        st.tuples(st.integers(0, 49), configs), max_size=3
    ))
    return Snapshot(
        base_len=base,
        last_entry=draw(log_entries()),
        config=draw(configs),
        store=draw(stores),
        sessions=draw(sessions),
        config_history=tuple(history),
    )


#: Well-formed chunks (the codec's own validation bounds).
chunk_messages = st.integers(min_value=1, max_value=5).flatmap(
    lambda n: st.builds(
        SnapshotChunk,
        sid=st.text(min_size=1, max_size=16),
        seq=st.integers(0, n - 1),
        n=st.just(n),
        data=st.text(max_size=50),
    )
)


# ----------------------------------------------------------------------
# Round trips
# ----------------------------------------------------------------------


@given(messages)
def test_message_round_trip(msg):
    assert decode_message(encode_message(msg)) == msg


@given(messages)
def test_frame_round_trip(msg):
    frame = encode_frame(msg)
    decoded, consumed = decode_frame(frame)
    assert decoded == msg
    assert consumed == len(frame)


@given(st.lists(messages, min_size=2, max_size=5))
def test_concatenated_frames_round_trip(msgs):
    data = b"".join(encode_frame(m) for m in msgs)
    offset, out = 0, []
    while offset < len(data):
        msg, offset = decode_frame(data, offset)
        out.append(msg)
    assert out == msgs


# ----------------------------------------------------------------------
# Malformed input: always ProtocolError, never a bare exception
# ----------------------------------------------------------------------


@given(messages, st.data())
def test_truncated_frames_raise_truncated(msg, data):
    frame = encode_frame(msg)
    cut = data.draw(st.integers(0, len(frame) - 1))
    with pytest.raises(TruncatedFrame):
        decode_frame(frame[:cut])


@given(st.binary(max_size=64))
def test_garbage_never_escapes_the_taxonomy(blob):
    try:
        decode_frame(blob)
    except ProtocolError:
        pass  # the only acceptable failure mode


@given(messages, st.data())
def test_flipped_bytes_never_escape_the_taxonomy(msg, data):
    frame = bytearray(encode_frame(msg))
    index = data.draw(st.integers(0, len(frame) - 1))
    frame[index] ^= data.draw(st.integers(1, 255))
    try:
        decoded, _ = decode_frame(bytes(frame))
    except ProtocolError:
        return
    # A flip that survives decoding must still produce a wire message
    # (e.g. a bit flip inside a string payload).
    assert decoded is not None


def test_oversized_declared_length_rejected_without_buffering():
    header = struct.pack(">I", MAX_FRAME_BYTES + 1)
    with pytest.raises(FrameTooLarge):
        decode_frame(header + b"x" * 10)


def test_zero_length_frame_rejected():
    with pytest.raises(FrameTooLarge):
        decode_frame(struct.pack(">I", 0) + b"rest")


def test_version_skew_rejected():
    body = encode_message(StatusRequest())
    skewed = bytes([PROTOCOL_VERSION + 1]) + body[1:]
    with pytest.raises(VersionMismatch):
        decode_message(skewed)


def test_unknown_kind_and_missing_fields_rejected():
    def frame_for(obj):
        payload = bytes([PROTOCOL_VERSION]) + json.dumps(obj).encode()
        return payload

    for bad in (
        {"kind": "no_such_kind"},
        {"kind": "elect_req", "frm": 1},            # missing fields
        {"kind": "elect_req", "frm": "x", "to": 2,  # wrong types
         "time": 3, "log": []},
        {"kind": "commit_req", "frm": 1, "to": 2, "time": 3,
         "log": [[1]], "commit_len": 0},            # bad entry shape
        ["not", "an", "object"],
        "just a string",
    ):
        with pytest.raises(ProtocolError):
            decode_message(frame_for(bad))


def test_unencodable_values_rejected_symmetrically():
    with pytest.raises(UnencodableValue):
        encode_message(ClientResponse("c", 0, True, result=object()))
    with pytest.raises(UnencodableValue):
        encode_message("not a message")
    with pytest.raises(UnencodableValue):
        encode_message(ClientResponse("c", 0, True, result=float("nan")))


# ----------------------------------------------------------------------
# Delta layer transparency
# ----------------------------------------------------------------------


@given(st.lists(messages, min_size=1, max_size=12))
def test_delta_connection_is_transparent(msgs):
    encoder, decoder = DeltaEncoder(), DeltaDecoder()
    for msg in msgs:
        frame = encoder.encode(msg)
        (length,) = struct.unpack_from(">I", frame)
        assert decoder.decode(frame[4 : 4 + length]) == msg


@given(logs, st.lists(log_entries(), max_size=4))
def test_delta_compresses_appends(base, extra):
    # Steady state: an appended suffix ships only the new entries.
    encoder = DeltaEncoder()
    first = encoder.encode(CommitReq(frm=1, to=2, time=3, log=base,
                                     commit_len=0))
    grown = base + tuple(extra)
    second = encoder.encode(CommitReq(frm=1, to=2, time=3, log=grown,
                                      commit_len=0))
    # The second frame carries at most the suffix (plus fixed overhead):
    # it must not re-ship the shared prefix.
    empty = DeltaEncoder().encode(CommitReq(frm=1, to=2, time=3, log=(),
                                            commit_len=0))
    suffix_only = len(DeltaEncoder().encode(
        CommitReq(frm=1, to=2, time=3, log=tuple(extra), commit_len=0)
    ))
    assert len(second) <= suffix_only + len(empty)
    assert len(first) >= len(empty)


def test_delta_decoder_rejects_prefix_beyond_connection_state():
    encoder, decoder = DeltaEncoder(), DeltaDecoder()
    log = (LogEntry(time=1, vrsn=1, payload="a"),
           LogEntry(time=1, vrsn=2, payload="b"))
    frame = encoder.encode(CommitReq(frm=1, to=2, time=1, log=log,
                                     commit_len=0))
    decoder.decode(frame[4:])
    # Second frame claims a 2-entry shared prefix; feed it to a FRESH
    # decoder (as after a reconnect) that has no such prefix.
    second = encoder.encode(CommitReq(frm=1, to=2, time=1,
                                      log=log + log[:1], commit_len=0))
    with pytest.raises(ProtocolError):
        DeltaDecoder().decode(second[4:])


@settings(max_examples=25)
@given(st.lists(st.binary(min_size=1, max_size=40), min_size=1, max_size=5))
def test_delta_decoder_survives_garbage(blobs):
    decoder = DeltaDecoder()
    for blob in blobs:
        try:
            decoder.decode(blob)
        except ProtocolError:
            pass


# ----------------------------------------------------------------------
# Snapshots on the wire (InstallSnapshot)
# ----------------------------------------------------------------------


def _decode_stream(decoder, blob):
    """Split a (possibly multi-frame) encoder output and feed every
    frame body to the delta decoder, keeping the non-None messages."""
    out, offset = [], 0
    while offset < len(blob):
        (length,) = struct.unpack_from(">I", blob, offset)
        msg = decoder.decode(blob[offset + 4 : offset + 4 + length])
        if msg is not None:
            out.append(msg)
        offset += 4 + length
    return out


@given(chunk_messages)
def test_snapshot_chunk_round_trip(chunk):
    assert decode_message(encode_message(chunk)) == chunk


@given(snapshots())
def test_snapshot_pack_round_trip(snap):
    back = unpack_snapshot(pack_snapshot(snap))
    assert back.sid == snap.sid
    assert back.base_len == snap.base_len
    assert back.last_entry == snap.last_entry
    assert back.config == snap.config
    assert back.store == snap.store
    assert back.sessions == snap.sessions
    assert back.config_history == snap.config_history


@given(snapshots())
def test_snapshot_chunks_reassemble(snap):
    decoder = DeltaDecoder()
    for chunk in snapshot_chunks(snap):
        assert decoder.decode(encode_message(chunk)) is None
    assert decoder.snapshots_installed == 1


@given(snapshots(), st.lists(log_entries(), max_size=4),
       st.lists(log_entries(), max_size=3))
def test_compact_delta_connection_is_transparent(snap, tail, extra):
    # The full lifecycle on one connection: plain log, then the peer
    # compacts (snapshot ships once), then the tail grows (suffix-only
    # frame), then a regression to a plain log (full reship, as when a
    # never-compacted node wins an election).
    encoder, decoder = DeltaEncoder(), DeltaDecoder()
    compact = CompactLog(snap, tuple(tail))
    grown = CompactLog(snap, tuple(tail) + tuple(extra))
    sequence = [
        CommitReq(frm=1, to=2, time=3, log=tuple(extra), commit_len=0),
        CommitReq(frm=1, to=2, time=3, log=compact,
                  commit_len=snap.base_len),
        CommitReq(frm=1, to=2, time=4, log=grown, commit_len=snap.base_len),
        CommitReq(frm=1, to=2, time=5, log=tuple(extra), commit_len=0),
    ]
    for msg in sequence:
        assert _decode_stream(decoder, encoder.encode(msg)) == [msg]
    # The snapshot shipped exactly once despite two frames referencing it.
    assert decoder.snapshots_installed == 1


@given(snapshots(), snapshots())
def test_new_snapshot_on_same_connection_ships_again(snap_a, snap_b):
    encoder, decoder = DeltaEncoder(), DeltaDecoder()
    first = CommitReq(frm=1, to=2, time=3, log=CompactLog(snap_a, ()),
                      commit_len=snap_a.base_len)
    second = CommitReq(frm=1, to=2, time=4, log=CompactLog(snap_b, ()),
                       commit_len=snap_b.base_len)
    assert _decode_stream(decoder, encoder.encode(first)) == [first]
    assert _decode_stream(decoder, encoder.encode(second)) == [second]
    distinct = len({snap_a.sid, snap_b.sid})
    assert decoder.snapshots_installed == distinct


def _chunk_frame_body(chunk):
    return encode_message(chunk)


def test_delta_referencing_uninstalled_snapshot_rejected():
    body = bytes([PROTOCOL_VERSION]) + json.dumps({
        "kind": "delta_commit_req", "frm": 1, "to": 2, "time": 1,
        "b": "9.9.9", "p": 9, "s": [], "commit_len": 0,
    }).encode()
    with pytest.raises(MalformedFrame):
        DeltaDecoder().decode(body)


def test_tampered_snapshot_chunk_fails_integrity_not_handlers():
    snap = Snapshot(
        base_len=3,
        last_entry=LogEntry(time=2, vrsn=3, payload=("put", "k", 1)),
        config=frozenset({1, 2}),
        store={"k": 1},
    )
    (chunk,) = snapshot_chunks(snap)
    # Flip the folded store's value inside the serialized text: the
    # chunk still parses, but the recomputed sid exposes... nothing --
    # the sid covers only the log position.  Corrupt the *position*
    # instead, which the sid does cover.
    tampered = SnapshotChunk(
        sid=chunk.sid, seq=0, n=1,
        data=chunk.data.replace('"base_len": 3', '"base_len": 4')
             .replace('"base_len":3', '"base_len":4'),
    )
    with pytest.raises(ProtocolError):
        DeltaDecoder().decode(_chunk_frame_body(tampered))


def test_inconsistent_chunk_counts_rejected():
    decoder = DeltaDecoder()
    decoder.decode(_chunk_frame_body(
        SnapshotChunk(sid="1.1.1", seq=0, n=3, data="x")
    ))
    with pytest.raises(MalformedFrame):
        decoder.decode(_chunk_frame_body(
            SnapshotChunk(sid="1.1.1", seq=1, n=2, data="y")
        ))


def test_malformed_chunk_shapes_rejected():
    for bad in (
        {"kind": "snap_chunk", "sid": "1.1.1", "seq": 0, "n": 0,
         "data": ""},                                   # n < 1
        {"kind": "snap_chunk", "sid": "1.1.1", "seq": 2, "n": 2,
         "data": ""},                                   # seq >= n
        {"kind": "snap_chunk", "sid": "1.1.1", "seq": 0,
         "n": MAX_SNAPSHOT_CHUNKS + 1, "data": ""},     # too many chunks
        {"kind": "snap_chunk", "sid": 7, "seq": 0, "n": 1, "data": ""},
    ):
        payload = bytes([PROTOCOL_VERSION]) + json.dumps(bad).encode()
        with pytest.raises(ProtocolError):
            decode_message(payload)


def test_plain_delta_over_snapshotted_connection_state_rejected():
    # Once a connection's last log was compact, a plain delta claiming
    # a nonzero shared prefix is state divergence, not a valid rewind.
    snap = Snapshot(
        base_len=2,
        last_entry=LogEntry(time=1, vrsn=2, payload=("put", "k", 1)),
        config=frozenset({1, 2}),
    )
    encoder, decoder = DeltaEncoder(), DeltaDecoder()
    first = CommitReq(frm=1, to=2, time=1, log=CompactLog(snap, ()),
                      commit_len=2)
    assert _decode_stream(decoder, encoder.encode(first)) == [first]
    body = bytes([PROTOCOL_VERSION]) + json.dumps({
        "kind": "delta_commit_req", "frm": 1, "to": 2, "time": 1,
        "p": 1, "s": [], "commit_len": 0,
    }).encode()
    with pytest.raises(MalformedFrame):
        decoder.decode(body)
