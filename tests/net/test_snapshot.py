"""Snapshotting: the compact log representation, leader-driven
compaction, and the InstallSnapshot catch-up path over real TCP.

The unit half pins the contract that keeps compaction invisible to the
unmodified spec handlers: absolute indexing, loud :class:`SnapshotElided`
failures on folded access, and the equivalence *"materializing a
compacted log == replaying the full history"* (truncation correctness).
The integration half exercises the payoff: a late-joining follower
catches up from the folded state instead of a full replay, and a
configuration entry that has been folded into a snapshot still supports
further reconfiguration.
"""

import time

import pytest

from repro.net.procs import LocalCluster
from repro.net.snapshot import (
    CompactLog,
    CompactServer,
    SnapshotElided,
    base_len,
    config_positions,
    find_request_compact,
    materialize_prefix,
    slice_prefix,
)
from repro.raft.messages import LogEntry
from repro.runtime.kvstore import materialize
from repro.runtime.linearize import check_history


def _entry(i, *, time=1, config=None, request_id=None):
    if config is not None:
        return LogEntry(time=time, vrsn=i + 1, payload=frozenset(config),
                        is_config=True)
    return LogEntry(time=time, vrsn=i + 1, payload=("put", f"k{i % 3}", i),
                    request_id=request_id)


def _full_log(n=8):
    """A representative log: commands, a config entry, a dedup id."""
    entries = [_entry(i) for i in range(n)]
    entries[2] = _entry(2, config={1, 2, 3, 4})
    entries[4] = LogEntry(time=1, vrsn=5, payload=("add", "ctr", 2),
                          request_id=("alice", 7))
    return tuple(entries)


# ----------------------------------------------------------------------
# CompactLog semantics
# ----------------------------------------------------------------------


def _compacted(n=8, commit=6):
    server = CompactServer(nid=1, conf0=frozenset({1, 2, 3}),
                           log=_full_log(n), commit_len=commit)
    assert server.compact() is True
    return server


def test_compact_log_keeps_absolute_coordinates():
    full = _full_log()
    server = _compacted(n=8, commit=6)
    log = server.log
    assert isinstance(log, CompactLog)
    assert base_len(log) == 6
    assert len(log) == 8                       # absolute, counts elided
    assert bool(log) is True
    assert log[-1] == full[-1]
    assert log[6] == full[6]
    assert log[5] == full[5]                   # the snapshot's last entry
    assert log[6:] == full[6:]
    assert log[7:100] == full[7:]
    assert log[3:3] == ()                      # empty slices never elide
    assert log[0:0] == ()


def test_compact_log_raises_loudly_on_folded_access():
    log = _compacted().log
    with pytest.raises(SnapshotElided):
        log[2]
    with pytest.raises(SnapshotElided):
        log[1:7]
    with pytest.raises(SnapshotElided):
        log[:3]
    with pytest.raises(SnapshotElided):
        list(log)
    with pytest.raises(SnapshotElided):
        log[::2]


def test_compact_log_prefix_slice_and_append():
    full = _full_log()
    log = _compacted(n=8, commit=6).log
    prefix = log[:7]
    assert isinstance(prefix, CompactLog)
    assert len(prefix) == 7 and prefix[6] == full[6]
    extended = log + (_entry(8),)
    assert len(extended) == 9
    assert extended[8] == _entry(8)
    assert slice_prefix(log, 3) == CompactLog(log.snap, ())
    assert slice_prefix(log, 7) == log[:7]


def test_compaction_preserves_materialization_and_derived_state():
    full = _full_log()
    server = _compacted(n=8, commit=6)
    log = server.log
    # Truncation correctness: every still-answerable prefix folds to the
    # same store a full replay produces.
    for upto in range(6, 9):
        assert materialize_prefix(log, upto) == materialize(
            e for e in full[:upto] if not e.is_config
        )
    with pytest.raises(SnapshotElided):
        materialize_prefix(log, 5)
    # Config, config history, and dedup sessions survive the fold.
    assert server.config() == frozenset({1, 2, 3, 4})
    assert (2, frozenset({1, 2, 3, 4})) in config_positions(server)
    assert log.snap.sessions == {"alice": 7}
    assert find_request_compact(server, ("alice", 7)) == 6   # folded
    assert find_request_compact(server, ("alice", 9)) is None
    assert find_request_compact(server, None) is None


def test_repeated_compaction_folds_incrementally():
    server = _compacted(n=8, commit=5)
    assert base_len(server.log) == 5
    assert server.compact() is False            # nothing new committed
    server.log = server.log + (
        _entry(8, request_id=("bob", 1)), _entry(9, config={1, 2}),
    )
    server.commit_len = 10
    assert server.compact() is True
    log = server.log
    assert base_len(log) == 10 and log.tail == ()
    assert server.config() == frozenset({1, 2})
    assert log.snap.sessions == {"alice": 7, "bob": 1}
    assert find_request_compact(server, ("bob", 1)) == 10
    # Both folded config entries remain locatable for courtesy replies.
    positions = dict(config_positions(server))
    assert positions[2] == frozenset({1, 2, 3, 4})
    assert positions[9] == frozenset({1, 2})


def test_find_request_in_uncompacted_tail_is_absolute():
    server = _compacted(n=8, commit=6)
    server.log = server.log + (_entry(8, request_id=("carol", 3)),)
    assert find_request_compact(server, ("carol", 3)) == 9


# ----------------------------------------------------------------------
# Integration: InstallSnapshot over real TCP
# ----------------------------------------------------------------------


def _wait_caught_up(client, nid, target_commit, timeout_s=20.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        status = client.status(nid)
        if status is not None and status.commit_len >= target_commit:
            return status
        time.sleep(0.05)
    raise AssertionError(f"S{nid} never reached commit_len {target_commit}")


def _tails_agree(client, nids):
    tails = {}
    for nid in nids:
        got = client.committed_tail(nid)
        if got is not None:
            tails[nid] = got
    nids = sorted(tails)
    for i, a in enumerate(nids):
        for b in nids[i + 1:]:
            ents_a, base_a = tails[a]
            ents_b, base_b = tails[b]
            lo = max(base_a, base_b)
            hi = min(base_a + len(ents_a), base_b + len(ents_b))
            assert ents_a[lo - base_a : hi - base_a] == \
                ents_b[lo - base_b : hi - base_b], (
                f"S{a}/S{b} disagree on committed entries [{lo}:{hi})"
            )


def test_late_joiner_catches_up_via_snapshot_not_full_replay():
    # Nodes 1-2 form the cluster; node 3 runs as a standby outside the
    # configuration.  A low snapshot threshold forces compaction before
    # node 3 joins, so its catch-up *must* go through InstallSnapshot.
    ops, payload = 60, "x" * 800
    with LocalCluster(nids=(1, 2, 3), conf0=frozenset({1, 2}), seed=21,
                      snapshot_threshold=16) as cluster:
        cluster.wait_for_leader()
        with cluster.client(client_id="c0", total_timeout_s=30.0) as client:
            for i in range(ops):
                client.put(f"k{i % 4}", payload)
            leader = client.find_leader()
            before = client.status(leader)
            assert before.base_len > 0, "threshold never triggered"
            sent_before = sum(
                client.status(n).bytes_sent for n in (1, 2)
            )
            assert client.reconfigure((1, 2, 3)) is True
            target = client.status(leader).commit_len
            joined = _wait_caught_up(client, 3, target)
            sent_after = sum(
                client.status(n).bytes_sent for n in (1, 2)
            )
        # The follower received a folded state, not the full history.
        assert joined.snapshots_installed >= 1
        assert joined.base_len > 0
        # Bytes shipped during catch-up stay far below a full replay:
        # the log holds `ops` entries of ~len(payload) bytes each, but
        # the snapshot folds them to at most 4 live keys.
        catch_up_bytes = sent_after - sent_before
        full_replay_floor = ops * len(payload)
        assert catch_up_bytes < full_replay_floor // 2, (
            f"catch-up shipped {catch_up_bytes}B, replay floor is "
            f"{full_replay_floor}B"
        )


def test_snapshot_carrying_config_survives_reconfiguration():
    # Fold a configuration entry into a snapshot, then keep
    # reconfiguring: membership answers must come from the snapshot's
    # config digest once the entry itself is elided.
    with LocalCluster(nids=(1, 2, 3), seed=22,
                      snapshot_threshold=8) as cluster:
        cluster.wait_for_leader()
        with cluster.client(client_id="c0", total_timeout_s=30.0) as client:
            assert client.reconfigure((1, 2)) is True
            # Drive the commit point well past the config entry so the
            # next compaction folds it.
            for i in range(24):
                client.add("n", 1)
            leader = client.find_leader()
            status = client.status(leader)
            assert status.base_len >= 2, "config entry was not folded"
            assert sorted(status.members) == [1, 2]
            # Now grow back: the membership baseline for this change is
            # the *snapshotted* config.
            assert client.reconfigure((1, 2, 3)) is True
            for i in range(8):
                client.add("n", 1)
            assert client.get("n") == 32
            status = client.status(client.find_leader())
            assert sorted(status.members) == [1, 2, 3]
            verdict = check_history(client.history)
            assert verdict.ok, verdict.describe()
            _tails_agree(client, cluster.nids)
