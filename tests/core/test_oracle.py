"""Unit tests for oracle outcomes, validation (Fig. 11/27), enumeration,
and the oracle strategies."""

import pytest

from repro.core import (
    FAIL,
    AdoreMachine,
    InvalidOracleOutcome,
    PullOk,
    PushOk,
    RandomOracle,
    ScriptedOracle,
    enumerate_pull_outcomes,
    enumerate_push_outcomes,
    initial_state,
    known_nodes,
    validate_pull,
    validate_push,
)
from repro.schemes import RaftSingleNodeScheme

from ..helpers import NODES3, build_tree, ec, mc, state_of

SCHEME = RaftSingleNodeScheme()


@pytest.fixture
def init_state():
    return initial_state(NODES3, SCHEME)


def test_validate_pull_accepts_fail(init_state):
    validate_pull(init_state, 1, FAIL, SCHEME)


def test_validate_pull_rejects_empty_group(init_state):
    with pytest.raises(InvalidOracleOutcome):
        validate_pull(init_state, 1, PullOk(group=frozenset(), time=1), SCHEME)


def test_validate_pull_rejects_caller_outside_group(init_state):
    with pytest.raises(InvalidOracleOutcome):
        validate_pull(init_state, 1, PullOk(group=frozenset({2, 3}), time=1), SCHEME)


def test_validate_pull_rejects_outsider(init_state):
    with pytest.raises(InvalidOracleOutcome):
        validate_pull(init_state, 1, PullOk(group=frozenset({1, 9}), time=1), SCHEME)


def test_validate_pull_rejects_stale_time():
    state = state_of(build_tree({}), {2: 5})
    with pytest.raises(InvalidOracleOutcome):
        validate_pull(state, 1, PullOk(group=frozenset({1, 2}), time=5), SCHEME)
    validate_pull(state, 1, PullOk(group=frozenset({1, 2}), time=6), SCHEME)


def test_validate_push_accepts_fail(init_state):
    validate_push(init_state, 1, FAIL, SCHEME)


def test_validate_push_rejects_unknown_target(init_state):
    with pytest.raises(InvalidOracleOutcome):
        validate_push(
            init_state, 1, PushOk(group=frozenset({1, 2}), target=42), SCHEME
        )


def test_validate_push_requires_can_commit():
    tree = build_tree({
        1: (0, ec(1, 1, voters={1, 2, 3})),
        2: (1, mc(1, 1, 1)),
    })
    state = state_of(tree, {1: 1, 2: 1, 3: 1})
    # Node 2 is not the caller of cache 2.
    with pytest.raises(InvalidOracleOutcome):
        validate_push(state, 2, PushOk(group=frozenset({1, 2}), target=2), SCHEME)
    validate_push(state, 1, PushOk(group=frozenset({1, 2}), target=2), SCHEME)


def test_validate_push_rejects_supporters_ahead_of_target():
    tree = build_tree({
        1: (0, ec(1, 1, voters={1, 2, 3})),
        2: (1, mc(1, 1, 1)),
    })
    state = state_of(tree, {1: 1, 2: 9})
    with pytest.raises(InvalidOracleOutcome):
        validate_push(state, 1, PushOk(group=frozenset({1, 2}), target=2), SCHEME)


def test_known_nodes_covers_all_configs(init_state):
    assert known_nodes(init_state, SCHEME) == NODES3


def test_enumerate_pull_covers_all_supporter_sets(init_state):
    outcomes = enumerate_pull_outcomes(init_state, 1, SCHEME)
    groups = {o.group for o in outcomes}
    # All subsets of {1,2,3} containing 1.
    assert groups == {
        frozenset({1}),
        frozenset({1, 2}),
        frozenset({1, 3}),
        frozenset({1, 2, 3}),
    }
    # Minimal legal time in the initial state is 1.
    assert all(o.time == 1 for o in outcomes)


def test_enumerate_pull_quorums_only(init_state):
    outcomes = enumerate_pull_outcomes(init_state, 1, SCHEME, include_non_quorum=False)
    assert all(len(o.group) >= 2 for o in outcomes)


def test_enumerate_pull_extra_times(init_state):
    outcomes = enumerate_pull_outcomes(init_state, 1, SCHEME, extra_times=2)
    times = {o.time for o in outcomes if o.group == frozenset({1, 2, 3})}
    assert times == {1, 2, 3}


def test_enumerate_pull_all_outcomes_valid(init_state):
    for outcome in enumerate_pull_outcomes(init_state, 1, SCHEME, extra_times=1):
        validate_pull(init_state, 1, outcome, SCHEME)


def test_enumerate_push_empty_without_commitable(init_state):
    assert enumerate_push_outcomes(init_state, 1, SCHEME) == []


def test_enumerate_push_covers_groups():
    tree = build_tree({
        1: (0, ec(1, 1, voters={1, 2, 3})),
        2: (1, mc(1, 1, 1)),
    })
    state = state_of(tree, {1: 1, 2: 1, 3: 1})
    outcomes = enumerate_push_outcomes(state, 1, SCHEME)
    assert {o.target for o in outcomes} == {2}
    groups = {o.group for o in outcomes}
    assert groups == {
        frozenset({1}),
        frozenset({1, 2}),
        frozenset({1, 3}),
        frozenset({1, 2, 3}),
    }
    for outcome in outcomes:
        validate_push(state, 1, outcome, SCHEME)


def test_enumerate_push_excludes_ahead_supporters():
    tree = build_tree({
        1: (0, ec(1, 1, voters={1, 2, 3})),
        2: (1, mc(1, 1, 1)),
    })
    state = state_of(tree, {1: 1, 2: 1, 3: 7})
    outcomes = enumerate_push_outcomes(state, 1, SCHEME)
    assert all(3 not in o.group for o in outcomes)


def test_random_oracle_is_reproducible(init_state):
    a = RandomOracle(seed=42).pull_outcome(init_state, 1, SCHEME)
    b = RandomOracle(seed=42).pull_outcome(init_state, 1, SCHEME)
    assert a == b


def test_random_oracle_fail_prob_one_sided():
    with pytest.raises(ValueError):
        RandomOracle(fail_prob=1.0)


def test_random_oracle_always_fails_when_no_options(init_state):
    # No commitable caches -> push must fail.
    outcome = RandomOracle(seed=0, fail_prob=0.0).push_outcome(init_state, 1, SCHEME)
    assert outcome == FAIL


def test_random_oracle_quorums_only(init_state):
    oracle = RandomOracle(seed=0, fail_prob=0.0, quorums_only=True)
    for _ in range(20):
        outcome = oracle.pull_outcome(init_state, 1, SCHEME)
        assert len(outcome.group) >= 2


def test_scripted_oracle_replays_in_order(init_state):
    oracle = ScriptedOracle([
        PullOk(group=frozenset({1, 2}), time=1),
        FAIL,
    ])
    assert oracle.remaining == 2
    first = oracle.pull_outcome(init_state, 1, SCHEME)
    assert isinstance(first, PullOk)
    assert oracle.pull_outcome(init_state, 1, SCHEME) == FAIL
    assert oracle.remaining == 0


def test_scripted_oracle_exhaustion_raises(init_state):
    oracle = ScriptedOracle([])
    with pytest.raises(InvalidOracleOutcome):
        oracle.pull_outcome(init_state, 1, SCHEME)


def test_scripted_oracle_type_mismatch_raises(init_state):
    oracle = ScriptedOracle([PushOk(group=frozenset({1}), target=0)])
    with pytest.raises(InvalidOracleOutcome):
        oracle.pull_outcome(init_state, 1, SCHEME)


def test_scripted_oracle_validates_eagerly(init_state):
    oracle = ScriptedOracle([PullOk(group=frozenset({2}), time=1)])
    machine = AdoreMachine.create(NODES3, SCHEME, oracle)
    with pytest.raises(InvalidOracleOutcome):
        machine.pull(1)  # caller 1 not in the scripted supporter set
