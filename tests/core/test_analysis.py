"""Tests for the analysis helpers (stats, rendering, effort counting)."""

import pytest

from repro.analysis import (
    PAPER_COQ_LOC,
    aggregate_runs,
    count_file,
    count_tree,
    downsample,
    effort_breakdown,
    package_root,
    percentile,
    render_series,
    render_table,
    spike_indices,
    summarize,
)


class TestStats:
    def test_percentile_endpoints(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 4.0
        assert percentile(values, 0.5) == 2.5

    def test_percentile_single_value(self):
        assert percentile([7.0], 0.99) == 7.0

    def test_percentile_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_summarize(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary.count == 3
        assert summary.mean == 2.0
        assert summary.minimum == 1.0
        assert summary.maximum == 3.0
        assert len(summary.row()) == 6

    def test_aggregate_runs(self):
        maxima, means, minima = aggregate_runs([[1, 4], [3, 2]])
        assert maxima == [3, 4]
        assert means == [2, 3]
        assert minima == [1, 2]

    def test_aggregate_rejects_ragged(self):
        with pytest.raises(ValueError):
            aggregate_runs([[1], [1, 2]])

    def test_downsample_preserves_short_series(self):
        assert downsample([1, 2], 10) == [1, 2]

    def test_downsample_bucket_means(self):
        out = downsample([1, 1, 3, 3], 2)
        assert out == [1.0, 3.0]

    def test_spike_indices(self):
        values = [1.0] * 10 + [10.0]
        assert spike_indices(values) == [10]


class TestRender:
    def test_table_alignment(self):
        text = render_table(["a", "bb"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "---" in lines[1]

    def test_series_has_extremes_and_markers(self):
        text = render_series([1, 2, 3, 2, 1], width=5, markers=[2])
        assert "max" in text and "min" in text
        assert "^" in text

    def test_series_empty(self):
        assert render_series([]) == "(empty series)"


class TestEffort:
    def test_count_file_distinguishes_kinds(self, tmp_path):
        path = tmp_path / "sample.py"
        path.write_text(
            '"""Docstring\nline two\n"""\n\n# comment\nx = 1\n'
        )
        code, docs, blank = count_file(str(path))
        assert code == 1
        assert docs == 4
        assert blank == 1

    def test_count_tree_aggregates(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        (tmp_path / "b.py").write_text("y = 2\nz = 3\n")
        loc = count_tree(str(tmp_path), name="sample")
        assert loc.files == 2
        assert loc.code == 3
        assert loc.total == 3

    def test_effort_breakdown_covers_subsystems(self):
        names = {m.name for m in effort_breakdown()}
        expected = {
            "repro.core",
            "repro.cado",
            "repro.ado",
            "repro.schemes",
            "repro.raft",
            "repro.refinement",
            "repro.mc",
            "repro.runtime",
            "repro.analysis",
        }
        assert expected <= names

    def test_paper_numbers_present(self):
        assert PAPER_COQ_LOC["adore total"] == 10_800
        assert PAPER_COQ_LOC["refinement"] == 13_800

    def test_package_root_is_a_directory(self):
        import os

        assert os.path.isdir(package_root())
