"""Unit tests for the operational semantics (Fig. 10/28)."""

import pytest

from repro.core import (
    FAIL,
    AdoreMachine,
    NotLeader,
    PullOk,
    PushOk,
    ReconfigDenied,
    ScriptedOracle,
    apply_invoke,
    apply_pull,
    apply_push,
    apply_reconfig,
    initial_state,
    is_ccache,
    is_ecache,
    is_mcache,
    is_rcache,
)
from repro.core.tree import ROOT_CID
from repro.schemes import RaftSingleNodeScheme

from ..helpers import NODES3

SCHEME = RaftSingleNodeScheme()


def elected(nid=1, group=frozenset({1, 2, 3}), time=1):
    """An initial state where ``nid`` has been elected."""
    state = initial_state(NODES3, SCHEME)
    state, cid, reason = apply_pull(state, nid, PullOk(group=group, time=time), SCHEME)
    assert reason == "ok"
    return state, cid


# ----------------------------------------------------------------------
# pull
# ----------------------------------------------------------------------

def test_pull_fail_is_noop():
    state = initial_state(NODES3, SCHEME)
    new_state, cid, reason = apply_pull(state, 1, FAIL, SCHEME)
    assert new_state == state
    assert cid is None
    assert reason == "oracle-fail"


def test_pull_quorum_adds_ecache_under_most_recent():
    state, cid = elected()
    cache = state.tree.cache(cid)
    assert is_ecache(cache)
    assert cache.time == 1
    assert cache.vrsn == 0
    assert cache.voters == frozenset({1, 2, 3})
    assert state.tree.parent(cid) == ROOT_CID


def test_pull_updates_supporter_times():
    state, _ = elected(group=frozenset({1, 2}), time=3)
    assert state.time_of(1) == 3
    assert state.time_of(2) == 3
    assert state.time_of(3) == 0


def test_pull_without_quorum_only_bumps_times():
    state = initial_state(NODES3, SCHEME)
    new_state, cid, reason = apply_pull(
        state, 1, PullOk(group=frozenset({1}), time=2), SCHEME
    )
    assert cid is None
    assert reason == "no-quorum"
    assert len(new_state.tree) == 1
    assert new_state.time_of(1) == 2


def test_failed_pull_blocks_older_leader():
    # A failed election's timestamp bump preempts a current leader.
    state, e1 = elected(nid=1, time=1)
    state, _, _ = apply_pull(state, 2, PullOk(group=frozenset({1, 2}), time=2), SCHEME)
    new_state, cid, reason = apply_invoke(state, 1, "m")
    assert cid is None
    assert reason == "not-leader"


def test_pull_inherits_adopted_config():
    state, cid = elected()
    assert state.tree.cache(cid).conf == state.tree.cache(ROOT_CID).conf


# ----------------------------------------------------------------------
# invoke
# ----------------------------------------------------------------------

def test_invoke_without_active_cache_is_noop():
    state = initial_state(NODES3, SCHEME)
    new_state, cid, reason = apply_invoke(state, 1, "m")
    assert cid is None
    assert reason == "no-active-cache"
    assert new_state == state


def test_invoke_appends_mcache_with_incremented_version():
    state, e1 = elected()
    state, m1, reason = apply_invoke(state, 1, "m1")
    assert reason == "ok"
    cache = state.tree.cache(m1)
    assert is_mcache(cache)
    assert cache.time == 1
    assert cache.vrsn == 1
    assert cache.method == "m1"
    assert state.tree.parent(m1) == e1

    state, m2, _ = apply_invoke(state, 1, "m2")
    assert state.tree.cache(m2).vrsn == 2
    assert state.tree.parent(m2) == m1


def test_invoke_fails_after_preemption():
    state, _ = elected(nid=1, time=1)
    # Node 1 votes in a later election; it is no longer leader at time 1.
    state, _, _ = apply_pull(state, 2, PullOk(group=frozenset({1, 2}), time=2), SCHEME)
    _, cid, reason = apply_invoke(state, 1, "m")
    assert cid is None
    assert reason == "not-leader"


# ----------------------------------------------------------------------
# reconfig
# ----------------------------------------------------------------------

def commit_once(state, nid=1):
    """Invoke and commit a method so R3 is satisfiable."""
    state, m, _ = apply_invoke(state, nid, "warmup")
    state, c, reason = apply_push(
        state, nid, PushOk(group=frozenset({1, 2, 3}), target=m), SCHEME
    )
    assert reason == "ok"
    return state


def test_reconfig_denied_without_current_term_commit():
    state, _ = elected()
    _, cid, reason = apply_reconfig(state, 1, frozenset({1, 2}), SCHEME)
    assert cid is None
    assert reason == "r3-denied"


def test_reconfig_after_commit_succeeds():
    state, _ = elected()
    state = commit_once(state)
    state, cid, reason = apply_reconfig(state, 1, frozenset({1, 2}), SCHEME)
    assert reason == "ok"
    cache = state.tree.cache(cid)
    assert is_rcache(cache)
    assert cache.conf == frozenset({1, 2})


def test_reconfig_r1_denied_for_two_server_jump():
    state, _ = elected()
    state = commit_once(state)
    _, cid, reason = apply_reconfig(state, 1, frozenset({1}), SCHEME)
    assert reason == "r1-denied"


def test_reconfig_r2_denied_while_rcache_pending():
    state, _ = elected()
    state = commit_once(state)
    state, r1, reason = apply_reconfig(state, 1, frozenset({1, 2}), SCHEME)
    assert reason == "ok"
    _, cid, reason = apply_reconfig(state, 1, frozenset({1, 2, 3}), SCHEME)
    assert reason in ("r2-denied", "r3-denied")
    assert cid is None


def test_second_reconfig_after_committing_first():
    state, _ = elected()
    state = commit_once(state)
    state, r1, _ = apply_reconfig(state, 1, frozenset({1, 2}), SCHEME)
    state, c, reason = apply_push(
        state, 1, PushOk(group=frozenset({1, 2}), target=r1), SCHEME
    )
    assert reason == "ok"
    state, r2, reason = apply_reconfig(state, 1, frozenset({1, 2, 3}), SCHEME)
    assert reason == "ok"


def test_reconfig_ablation_switches():
    state, _ = elected()
    _, cid, reason = apply_reconfig(
        state, 1, frozenset({1, 2}), SCHEME, enforce_r3=False
    )
    assert reason == "ok"


def test_reconfig_without_active_cache():
    state = initial_state(NODES3, SCHEME)
    _, cid, reason = apply_reconfig(state, 1, frozenset({1, 2}), SCHEME)
    assert reason == "no-active-cache"


# ----------------------------------------------------------------------
# push
# ----------------------------------------------------------------------

def test_push_fail_is_noop():
    state = initial_state(NODES3, SCHEME)
    new_state, cid, reason = apply_push(state, 1, FAIL, SCHEME)
    assert new_state == state
    assert reason == "oracle-fail"


def test_push_inserts_ccache_between_target_and_children():
    state, _ = elected()
    state, m1, _ = apply_invoke(state, 1, "m1")
    state, m2, _ = apply_invoke(state, 1, "m2")
    # Commit only m1: the partial-failure child m2 must be re-parented
    # below the new CCache.
    state, c, reason = apply_push(
        state, 1, PushOk(group=frozenset({1, 2}), target=m1), SCHEME
    )
    assert reason == "ok"
    cache = state.tree.cache(c)
    assert is_ccache(cache)
    assert (cache.time, cache.vrsn) == (1, 1)
    assert state.tree.parent(c) == m1
    assert state.tree.parent(m2) == c


def test_push_without_quorum_only_bumps_times():
    state, _ = elected()
    state, m1, _ = apply_invoke(state, 1, "m1")
    new_state, cid, reason = apply_push(
        state, 1, PushOk(group=frozenset({1}), target=m1), SCHEME
    )
    assert cid is None
    assert reason == "no-quorum"
    assert len(new_state.tree) == len(state.tree)


def test_push_sets_supporter_times_to_target_time():
    state, _ = elected(time=4, group=frozenset({1, 2}))
    state, m1, _ = apply_invoke(state, 1, "m1")
    state, c, _ = apply_push(
        state, 1, PushOk(group=frozenset({1, 3}), target=m1), SCHEME
    )
    assert state.time_of(3) == 4


def test_partial_failure_child_remains_commitable():
    state, _ = elected()
    state, m1, _ = apply_invoke(state, 1, "m1")
    state, m2, _ = apply_invoke(state, 1, "m2")
    state, _, _ = apply_push(
        state, 1, PushOk(group=frozenset({1, 2}), target=m1), SCHEME
    )
    # m2 can still be committed afterwards.
    state, c2, reason = apply_push(
        state, 1, PushOk(group=frozenset({1, 3}), target=m2), SCHEME
    )
    assert reason == "ok"
    assert state.tree.parent(c2) == m2


# ----------------------------------------------------------------------
# machine wrapper
# ----------------------------------------------------------------------

def test_machine_records_history():
    oracle = ScriptedOracle([
        PullOk(group=frozenset({1, 2, 3}), time=1),
        FAIL,
    ])
    machine = AdoreMachine.create(NODES3, SCHEME, oracle)
    machine.pull(1)
    machine.invoke(1, "m")
    machine.push(1)
    assert [r.op for r in machine.history] == ["pull", "invoke", "push"]
    assert [r.ok for r in machine.history] == [True, True, False]


def test_machine_strict_raises_on_rule_denial():
    oracle = ScriptedOracle([PullOk(group=frozenset({1, 2, 3}), time=1)])
    machine = AdoreMachine.create(NODES3, SCHEME, oracle, strict=True)
    machine.pull(1)
    with pytest.raises(ReconfigDenied):
        machine.reconfig(1, frozenset({1, 2}))


def test_machine_strict_tolerates_oracle_failures():
    machine = AdoreMachine.create(NODES3, SCHEME, ScriptedOracle([FAIL]), strict=True)
    result = machine.pull(1)  # must not raise
    assert not result.ok


def test_machine_strict_raises_on_invoke_without_election():
    from repro.core import InvalidOperation

    machine = AdoreMachine.create(NODES3, SCHEME, ScriptedOracle([]), strict=True)
    with pytest.raises(InvalidOperation):
        machine.invoke(1, "m")


def test_machine_strict_raises_not_leader():
    oracle = ScriptedOracle([
        PullOk(group=frozenset({1, 2, 3}), time=1),
        PullOk(group=frozenset({1, 2}), time=2),
    ])
    machine = AdoreMachine.create(NODES3, SCHEME, oracle, strict=True)
    machine.pull(1)
    machine.pull(2)  # preempts node 1
    with pytest.raises(NotLeader):
        machine.invoke(1, "m")


def test_machine_render_smoke():
    machine = AdoreMachine.create(NODES3, SCHEME, ScriptedOracle([]))
    assert "C(n0,t0,v0)" in machine.render()


class TestHistoryReplay:
    def test_export_and_replay_reconstructs_state(self):
        from repro.core import RandomOracle
        from repro.core.semantics import replay_history

        machine = AdoreMachine.create(
            NODES3, SCHEME, RandomOracle(seed=17, fail_prob=0.25)
        )
        for i in range(20):
            nid = (i % 3) + 1
            machine.pull(nid)
            machine.invoke(nid, f"m{i}")
            machine.push(nid)
        clone = replay_history(NODES3, SCHEME, machine.export_history())
        assert clone.state == machine.state
        assert len(clone.history) == len(machine.history)

    def test_replay_preserves_reconfigs(self):
        from repro.core.semantics import replay_history

        oracle = ScriptedOracle([
            PullOk(group=frozenset({1, 2, 3}), time=1),
            PushOk(group=frozenset({1, 2}), target=2),
            PushOk(group=frozenset({1, 2}), target=4),
        ])
        machine = AdoreMachine.create(NODES3, SCHEME, oracle)
        machine.pull(1)
        machine.invoke(1, "m")
        machine.push(1)
        machine.reconfig(1, frozenset({1, 2}))
        machine.push(1)
        clone = replay_history(NODES3, SCHEME, machine.export_history())
        assert clone.state == machine.state

    def test_history_records_arguments(self):
        oracle = ScriptedOracle([PullOk(group=frozenset({1, 2, 3}), time=1)])
        machine = AdoreMachine.create(NODES3, SCHEME, oracle)
        machine.pull(1)
        machine.invoke(1, "payload")
        history = machine.export_history()
        assert history[1] == ("invoke", 1, "payload", None)

    def test_replay_rejects_unknown_ops(self):
        import pytest

        from repro.core.semantics import replay_history

        with pytest.raises(ValueError):
            replay_history(NODES3, SCHEME, [("explode", 1, None, None)])
