"""Property-based tests for the cache-tree data structure itself.

The paper spends ~2.3k lines of Coq on generic tree well-formedness
(acyclicity, parent-existence, ...).  These hypothesis tests are the
randomized analogue: random mixes of ``add_leaf``/``insert_btw`` keep
every structural invariant, and the derived queries (ancestors, paths,
nearest common ancestors) satisfy their algebraic laws.
"""

from hypothesis import given, settings, strategies as st

from repro.core import CacheTree, MCache
from repro.core.tree import ROOT_CID

from ..helpers import root


def grow_random_tree(data, max_ops=12):
    """Apply a random mix of add_leaf / insert_btw operations."""
    tree = CacheTree.initial(root())
    ops = data.draw(st.integers(min_value=0, max_value=max_ops), label="ops")
    for i in range(ops):
        parent = data.draw(
            st.sampled_from(sorted(tree.cids())), label=f"parent{i}"
        )
        cache = MCache(
            caller=data.draw(st.integers(1, 3), label=f"caller{i}"),
            time=data.draw(st.integers(0, 5), label=f"time{i}"),
            vrsn=i + 1,
            conf=frozenset({1, 2, 3}),
            method=f"m{i}",
        )
        if data.draw(st.booleans(), label=f"btw{i}"):
            tree, _ = tree.insert_btw(parent, cache)
        else:
            tree, _ = tree.add_leaf(parent, cache)
    return tree


@settings(max_examples=150, deadline=None)
@given(st.data())
def test_random_growth_is_structurally_sound(data):
    tree = grow_random_tree(data)
    # Structural invariants (ignoring the cache-content checks, which
    # random payloads deliberately violate).
    problems = [
        p
        for p in tree.well_formedness_violations()
        if "version" not in p and "time/vrsn" not in p and "CCache" not in p
    ]
    assert problems == []


@settings(max_examples=100, deadline=None)
@given(st.data())
def test_every_cache_reaches_the_root(data):
    tree = grow_random_tree(data)
    for cid in tree.cids():
        assert tree.branch(cid)[0] == ROOT_CID


@settings(max_examples=100, deadline=None)
@given(st.data())
def test_ancestor_relation_is_a_strict_partial_order(data):
    tree = grow_random_tree(data, max_ops=8)
    cids = list(tree.cids())
    for a in cids:
        assert not tree.is_ancestor(a, a)  # irreflexive
        for b in cids:
            if tree.is_ancestor(a, b):
                assert not tree.is_ancestor(b, a)  # antisymmetric
                for c in cids:
                    if tree.is_ancestor(b, c):
                        assert tree.is_ancestor(a, c)  # transitive


@settings(max_examples=100, deadline=None)
@given(st.data())
def test_nca_laws(data):
    tree = grow_random_tree(data, max_ops=8)
    cids = list(tree.cids())
    for a in cids:
        for b in cids:
            nca = tree.nearest_common_ancestor(a, b)
            assert tree.is_ancestor(nca, a, strict=False)
            assert tree.is_ancestor(nca, b, strict=False)
            assert tree.nearest_common_ancestor(b, a) == nca
    for a in cids:
        assert tree.nearest_common_ancestor(a, a) == a


@settings(max_examples=100, deadline=None)
@given(st.data())
def test_path_between_is_symmetric_in_length(data):
    tree = grow_random_tree(data, max_ops=8)
    cids = list(tree.cids())
    for a in cids:
        for b in cids:
            forward = tree.path_between(a, b)
            backward = tree.path_between(b, a)
            assert len(forward) == len(backward)
            assert set(forward) == set(backward)
            assert a not in forward and b not in forward


@settings(max_examples=100, deadline=None)
@given(st.data())
def test_children_partition_descendants(data):
    tree = grow_random_tree(data, max_ops=10)
    for cid in tree.cids():
        descendants = set(tree.descendants(cid))
        via_children = set()
        for child in tree.children(cid):
            via_children |= set(tree.descendants(child, include_self=True))
        assert descendants == via_children


@settings(max_examples=100, deadline=None)
@given(st.data())
def test_insert_btw_preserves_leaf_count_or_structure(data):
    tree = grow_random_tree(data, max_ops=6)
    parent = data.draw(st.sampled_from(sorted(tree.cids())), label="parent")
    cache = MCache(caller=1, time=9, vrsn=99, conf=frozenset({1}), method="x")
    children_before = tree.children(parent)
    grown, cid = tree.insert_btw(parent, cache)
    # The new cache takes over exactly the old children.
    assert grown.children(parent) == (cid,)
    assert set(grown.children(cid)) == set(children_before)
