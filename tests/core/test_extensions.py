"""Tests for the Section 8 extensions: stop-the-world and α-delayed
reconfiguration."""

import pytest

from repro.core import PullOk, PushOk, ScriptedOracle, check_state, committed_methods
from repro.core.extensions import (
    AlphaReconfigMachine,
    StopTheWorldMachine,
    effective_config,
    prune_to_branch,
    uncommitted_depth,
)
from repro.schemes import RaftSingleNodeScheme

from ..helpers import NODES3, build_tree, cc, ec, mc, rc

SCHEME = RaftSingleNodeScheme()
F = frozenset


class TestPrune:
    def test_prune_keeps_branch_and_descendants(self):
        tree = build_tree({
            1: (0, ec(1, 1)),
            2: (1, mc(1, 1, 1)),
            3: (1, mc(2, 1, 1)),     # sibling branch
            4: (2, mc(1, 1, 2)),
        })
        pruned = prune_to_branch(tree, 4)
        assert set(pruned.cids()) == {0, 1, 2, 4}
        assert pruned.is_well_formed()

    def test_prune_refuses_dropping_newest(self):
        tree = build_tree({
            1: (0, ec(1, 1)),
            2: (0, ec(2, 2)),
        })
        with pytest.raises(ValueError):
            prune_to_branch(tree, 1)


class TestStopTheWorld:
    def run_machine(self):
        oracle = ScriptedOracle([
            PullOk(group=F({1, 2, 3}), time=1),
            PushOk(group=F({1, 2, 3}), target=2),   # commit M1
            PushOk(group=F({1, 2}), target=5),      # commit the RCache
        ])
        machine = StopTheWorldMachine.create(NODES3, SCHEME, oracle)
        machine.pull(1)                      # E1 = 1
        machine.invoke(1, "m1")              # M1 = 2
        machine.invoke(1, "m2")              # M2 = 3 (will be stranded)
        machine.push(1)                      # C1 = 4 between M1 and M2
        machine.reconfig(1, F({1, 2}))       # R = 5 ... wait for cids
        return machine

    def test_regular_commit_does_not_stop_world(self):
        oracle = ScriptedOracle([
            PullOk(group=F({1, 2, 3}), time=1),
            PushOk(group=F({1, 2, 3}), target=2),
        ])
        machine = StopTheWorldMachine.create(NODES3, SCHEME, oracle)
        machine.pull(1)
        machine.invoke(1, "m1")
        result = machine.push(1)
        assert result.reason == "ok"

    def test_reconfig_commit_prunes_siblings(self):
        oracle = ScriptedOracle([
            PullOk(group=F({1, 2, 3}), time=1),
            PushOk(group=F({1, 2, 3}), target=2),   # commit M1 -> C1 at 4
            PullOk(group=F({2, 3}), time=2),        # E2 under C1 (cid 5)
            PushOk(group=F({2, 3}), target=6),      # commit M3 -> C2 at 7
            PullOk(group=F({1, 2}), time=3),        # E3 under C2 (cid 8)
            PushOk(group=F({1, 2}), target=9),      # commit M4 (R3 warmup)
            PushOk(group=F({1, 2}), target=11),     # commit the RCache
        ])
        machine = StopTheWorldMachine.create(NODES3, SCHEME, oracle)
        machine.pull(1)                         # E1 = 1
        machine.invoke(1, "m1")                 # M1 = 2
        machine.invoke(1, "m2")                 # M2 = 3 (stale branch later)
        machine.push(1)                         # C1 = 4 (M2 now below C1)
        machine.pull(2)                         # E2 = 5 under C1
        machine.invoke(2, "m3")                 # M3 = 6
        machine.push(2)                         # C2 = 7
        machine.pull(1)                         # E3 = 8 under C2
        machine.invoke(1, "m4")                 # M4 = 9
        machine.push(1)                         # C3 = 10 (satisfies R3 at t3)
        result = machine.reconfig(1, F({1, 2}))  # R = 11
        assert result.ok, result.reason
        size_before = len(machine.state.tree)
        result = machine.push(1)                # commits R -> stop the world
        assert result.reason == "ok-stopped-world"
        tree = machine.state.tree
        # The stale M2 branch and the stranded E caches are gone.
        assert len(tree) < size_before + 1
        for cid in tree.cids():
            assert tree.same_branch(cid, result.new_cid) or tree.is_ancestor(
                result.new_cid, cid
            )
        assert tree.is_well_formed()
        assert check_state(machine.state).ok

    def test_committed_history_survives_pruning(self):
        oracle = ScriptedOracle([
            PullOk(group=F({1, 2, 3}), time=1),
            PushOk(group=F({1, 2, 3}), target=2),
            PushOk(group=F({1, 2}), target=4),
        ])
        machine = StopTheWorldMachine.create(NODES3, SCHEME, oracle)
        machine.pull(1)
        machine.invoke(1, "m1")       # cid 2
        machine.push(1)               # C1 cid 3
        machine.reconfig(1, F({1, 2}))  # R cid 4
        result = machine.push(1)
        assert result.reason == "ok-stopped-world"
        assert committed_methods(machine.state.tree) == ["m1", F({1, 2})]


class TestAlphaMachine:
    def machine(self, outcomes, alpha=2):
        return AlphaReconfigMachine.create(
            NODES3, SCHEME, ScriptedOracle(outcomes), alpha=alpha
        )

    def test_window_blocks_deep_speculation(self):
        m = self.machine([PullOk(group=F({1, 2, 3}), time=1)], alpha=2)
        m.pull(1)
        assert m.invoke(1, "m1").ok
        assert m.invoke(1, "m2").ok
        result = m.invoke(1, "m3")
        assert not result.ok
        assert result.reason == "alpha-window-full"

    def test_window_reopens_after_commit(self):
        m = self.machine([
            PullOk(group=F({1, 2, 3}), time=1),
            PushOk(group=F({1, 2, 3}), target=3),
        ], alpha=2)
        m.pull(1)
        m.invoke(1, "m1")
        m.invoke(1, "m2")
        m.push(1)   # commits both
        assert m.invoke(1, "m3").ok

    def test_uncommitted_config_is_inert(self):
        m = self.machine([
            PullOk(group=F({1, 2, 3}), time=1),
            PushOk(group=F({1, 2, 3}), target=2),
        ], alpha=3)
        m.pull(1)
        m.invoke(1, "m1")            # cid 2
        m.push(1)                    # C1 cid 3
        r = m.reconfig(1, F({1, 2, 3, 4}))
        assert r.ok
        # A method invoked after the (uncommitted) RCache still carries
        # the old effective configuration.
        result = m.invoke(1, "m2")
        assert result.ok
        cache = m.state.tree.cache(result.new_cid)
        assert cache.conf == NODES3

    def test_committed_config_takes_effect(self):
        m = self.machine([
            PullOk(group=F({1, 2, 3}), time=1),
            PushOk(group=F({1, 2, 3}), target=2),
            PushOk(group=F({1, 2, 3}), target=4),
        ], alpha=3)
        m.pull(1)
        m.invoke(1, "m1")                  # cid 2
        m.push(1)                          # C1 cid 3
        m.reconfig(1, F({1, 2, 3, 4}))     # R cid 4
        m.push(1)                          # commits R -> cid 5
        result = m.invoke(1, "m2")
        assert m.state.tree.cache(result.new_cid).conf == F({1, 2, 3, 4})

    def test_alpha_pull_uses_effective_config(self):
        # An uncommitted RCache must not change election quorums.
        m = self.machine([
            PullOk(group=F({1, 2, 3}), time=1),
            PushOk(group=F({1, 2, 3}), target=2),
            PullOk(group=F({2, 3}), time=2),
        ], alpha=3)
        m.pull(1)
        m.invoke(1, "m1")
        m.push(1)
        m.reconfig(1, F({1, 2}))    # shrink, uncommitted
        result = m.pull(2)
        assert result.ok
        # The new ECache's configuration is the committed one.
        assert m.state.tree.cache(result.new_cid).conf == NODES3
        assert check_state(m.state).ok


class TestEffectiveConfig:
    def test_root_config_by_default(self):
        tree = build_tree({1: (0, ec(1, 1))})
        assert effective_config(tree, 1) == NODES3

    def test_committed_rcache_wins(self):
        new_conf = F({1, 2})
        tree = build_tree({
            1: (0, ec(1, 1)),
            2: (1, rc(1, 1, 1, conf=new_conf)),
            3: (2, cc(1, 1, 1, conf=new_conf, voters={1, 2})),
        })
        assert effective_config(tree, 3) == new_conf

    def test_uncommitted_rcache_ignored(self):
        tree = build_tree({
            1: (0, ec(1, 1)),
            2: (1, rc(1, 1, 1, conf=F({1, 2}))),
        })
        assert effective_config(tree, 2) == NODES3

    def test_uncommitted_depth(self):
        tree = build_tree({
            1: (0, ec(1, 1)),
            2: (1, mc(1, 1, 1)),
            3: (2, cc(1, 1, 1, voters={1, 2})),
            4: (3, mc(1, 1, 2)),
            5: (4, mc(1, 1, 3)),
        })
        assert uncommitted_depth(tree, 5) == 2
        assert uncommitted_depth(tree, 3) == 0
