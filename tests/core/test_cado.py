"""Tests for the CADO restriction (Adore minus reconfiguration)."""

import pytest

from repro.cado import CadoMachine
from repro.core import (
    FAIL,
    InvalidOperation,
    PullOk,
    PushOk,
    ScriptedOracle,
    StaticScheme,
    check_state,
)

NODES = frozenset({1, 2, 3})


def machine(outcomes):
    return CadoMachine.create(NODES, oracle=ScriptedOracle(outcomes))


def test_reconfig_is_structurally_absent():
    m = machine([])
    with pytest.raises(InvalidOperation):
        m.reconfig(1, frozenset({1, 2}))


def test_normal_operation_works():
    m = machine([
        PullOk(group=frozenset({1, 2}), time=1),
        PushOk(group=frozenset({1, 3}), target=2),
    ])
    assert m.pull(1).ok
    assert m.invoke(1, "a").ok
    assert m.push(1).ok
    assert check_state(m.state).ok


def test_static_scheme_by_default():
    m = machine([])
    assert isinstance(m.scheme, StaticScheme)


def test_oracle_failures_are_noops():
    m = machine([FAIL])
    result = m.pull(1)
    assert not result.ok
    assert len(m.state.tree) == 1
