"""Property-based tests of the oracle layer: the exhaustive enumerators
are *sound* (everything they yield passes the valid-oracle rules) and
*complete* (every supporter set a brute-force sweep validates is
enumerated) on randomized reachable states."""

from hypothesis import given, settings, strategies as st

from repro.core import (
    PullOk,
    PushOk,
    apply_invoke,
    apply_pull,
    apply_push,
    enumerate_pull_outcomes,
    enumerate_push_outcomes,
    initial_state,
    is_committable,
    known_nodes,
    validate_pull,
    validate_push,
)
from repro.core.errors import InvalidOracleOutcome
from repro.schemes import RaftSingleNodeScheme

UNIVERSE = [1, 2, 3]
SCHEME = RaftSingleNodeScheme()


def random_reachable_state(data, steps=6):
    state = initial_state(frozenset(UNIVERSE), SCHEME)
    for step in range(steps):
        nid = data.draw(st.sampled_from(UNIVERSE), label=f"nid{step}")
        op = data.draw(
            st.sampled_from(["pull", "invoke", "push"]), label=f"op{step}"
        )
        if op == "pull":
            options = enumerate_pull_outcomes(state, nid, SCHEME)
            if options:
                outcome = data.draw(st.sampled_from(options), label=f"o{step}")
                state, _, _ = apply_pull(state, nid, outcome, SCHEME)
        elif op == "invoke":
            state, _, _ = apply_invoke(state, nid, f"m{step}")
        else:
            options = enumerate_push_outcomes(state, nid, SCHEME)
            if options:
                outcome = data.draw(st.sampled_from(options), label=f"o{step}")
                state, _, _ = apply_push(state, nid, outcome, SCHEME)
    return state


def all_nonempty_subsets(nodes):
    import itertools

    for size in range(1, len(nodes) + 1):
        for combo in itertools.combinations(sorted(nodes), size):
            yield frozenset(combo)


@settings(max_examples=80, deadline=None)
@given(st.data())
def test_enumerated_pulls_are_sound(data):
    state = random_reachable_state(data)
    nid = data.draw(st.sampled_from(UNIVERSE), label="caller")
    for outcome in enumerate_pull_outcomes(state, nid, SCHEME, extra_times=1):
        validate_pull(state, nid, outcome, SCHEME)  # must not raise


@settings(max_examples=80, deadline=None)
@given(st.data())
def test_enumerated_pulls_are_complete_at_minimal_times(data):
    state = random_reachable_state(data)
    nid = data.draw(st.sampled_from(UNIVERSE), label="caller")
    enumerated = {o.group for o in enumerate_pull_outcomes(state, nid, SCHEME)}
    # Brute force: every supporter set that validates at its minimal
    # legal time must have been enumerated.
    for group in all_nonempty_subsets(known_nodes(state, SCHEME)):
        time = max(state.time_of(s) for s in group) + 1
        try:
            validate_pull(state, nid, PullOk(group=group, time=time), SCHEME)
        except InvalidOracleOutcome:
            continue
        assert group in enumerated, (sorted(group), time)


@settings(max_examples=80, deadline=None)
@given(st.data())
def test_enumerated_pushes_are_sound(data):
    state = random_reachable_state(data)
    nid = data.draw(st.sampled_from(UNIVERSE), label="caller")
    for outcome in enumerate_push_outcomes(state, nid, SCHEME):
        validate_push(state, nid, outcome, SCHEME)  # must not raise


@settings(max_examples=80, deadline=None)
@given(st.data())
def test_enumerated_pushes_are_complete(data):
    state = random_reachable_state(data)
    nid = data.draw(st.sampled_from(UNIVERSE), label="caller")
    enumerated = {
        (o.group, o.target) for o in enumerate_push_outcomes(state, nid, SCHEME)
    }
    for cid, cache in state.tree.items():
        if not is_committable(cache):
            continue
        for group in all_nonempty_subsets(UNIVERSE):
            try:
                validate_push(
                    state, nid, PushOk(group=group, target=cid), SCHEME
                )
            except InvalidOracleOutcome:
                continue
            assert (group, cid) in enumerated, (sorted(group), cid)
