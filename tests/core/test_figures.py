"""Walkthroughs of the paper's figures through the real semantics."""

from repro.core import (
    check_replicated_state_safety,
    check_state,
    is_ccache,
    is_ecache,
    is_mcache,
    is_rcache,
    rdist,
)
from repro.core.figures import (
    fig4_blocked_machine,
    fig4_unsafe_machine,
    fig5_machine,
)


class TestFig5:
    """Fig. 5: sample Adore behaviors on three replicas."""

    def test_shapes(self):
        machine, labels = fig5_machine()
        tree = machine.state.tree
        assert is_ecache(tree.cache(labels["E1"]))
        assert is_mcache(tree.cache(labels["M1"]))
        assert is_ccache(tree.cache(labels["C1"]))
        assert is_rcache(tree.cache(labels["R1"]))

    def test_push_inserts_between(self):
        # Fig. 5c: the CCache lands after M1, *before* M2.
        machine, labels = fig5_machine()
        tree = machine.state.tree
        assert tree.parent(labels["C1"]) == labels["M1"]
        assert tree.parent(labels["M2"]) == labels["C1"]

    def test_reconfig_grows_active_branch(self):
        # Fig. 5d: the RCache extends S1's branch below M2.
        machine, labels = fig5_machine()
        assert machine.state.tree.parent(labels["R1"]) == labels["M2"]

    def test_election_adopts_most_recent_observed(self):
        # Fig. 5e: S2's election lands after the CCache because its
        # voters {2, 3} have not observed S1's MCache or RCache.
        machine, labels = fig5_machine()
        tree = machine.state.tree
        assert tree.parent(labels["E2"]) == labels["C1"]
        assert tree.parent(labels["M3"]) == labels["E2"]

    def test_state_is_safe(self):
        machine, _ = fig5_machine()
        assert check_state(machine.state).ok


class TestFig4:
    """Fig. 4 / Fig. 12: the single-node membership change bug."""

    def test_unsafe_run_violates_safety(self):
        machine, labels = fig4_unsafe_machine()
        violations = check_replicated_state_safety(machine.state.tree)
        assert len(violations) == 1

    def test_divergent_commits_have_rdist_two(self):
        machine, labels = fig4_unsafe_machine()
        assert rdist(machine.state.tree, labels["C2"], labels["C3"]) == 2

    def test_disjoint_quorums(self):
        machine, labels = fig4_unsafe_machine()
        tree = machine.state.tree
        q1 = tree.cache(labels["C2"]).voters
        q2 = tree.cache(labels["C3"]).voters
        assert q1 == frozenset({2, 4})
        assert q2 == frozenset({1, 3})
        assert not (q1 & q2)

    def test_elections_fork_from_root(self):
        # S2's voters have not observed S1's RCache, so E2 forks at root.
        machine, labels = fig4_unsafe_machine()
        tree = machine.state.tree
        assert tree.parent(labels["E2"]) == 0
        # S1's second election adopts its own stale RCache.
        assert tree.parent(labels["E3"]) == labels["R1"]

    def test_r3_blocks_the_first_reconfig(self):
        machine, denied = fig4_blocked_machine()
        assert not denied.ok
        assert denied.reason == "r3-denied"
        assert check_state(machine.state).ok

    def test_unsafe_run_breaks_lemma_b8(self):
        # Lemma 4.4 (CCache in RCache fork) is exactly the invariant the
        # buggy run violates.
        from repro.core import check_ccache_in_rcache_fork

        machine, _ = fig4_unsafe_machine()
        assert check_ccache_in_rcache_fork(machine.state.tree) != []
