"""Unit tests for the Adore state pair (tree, times) and the TimeMap."""

from repro.core import TimeMap, initial_state, root_cache
from repro.core.state import initial_supporters
from repro.schemes import RaftSingleNodeScheme

NODES = frozenset({1, 2, 3})
SCHEME = RaftSingleNodeScheme()


class TestTimeMap:
    def test_defaults_to_zero(self):
        times = TimeMap()
        assert times.get(7) == 0
        assert times.max_time() == 0

    def test_zero_entries_are_normalized_away(self):
        assert TimeMap({1: 0, 2: 3}) == TimeMap({2: 3})
        assert hash(TimeMap({1: 0, 2: 3})) == hash(TimeMap({2: 3}))

    def test_update_many_is_functional(self):
        base = TimeMap({1: 1})
        updated = base.update_many([2, 3], 5)
        assert base.get(2) == 0
        assert updated.get(2) == 5
        assert updated.get(1) == 1
        assert updated.max_time() == 5

    def test_items_sorted(self):
        times = TimeMap({3: 1, 1: 2})
        assert list(times.items()) == [(1, 2), (3, 1)]

    def test_repr(self):
        assert "n1: 2" in repr(TimeMap({1: 2}))


class TestAdoreState:
    def test_initial_state_shape(self):
        state = initial_state(NODES, SCHEME)
        assert len(state.tree) == 1
        assert state.max_time() == 0
        root = state.tree.cache(0)
        assert root.kind == "C"
        assert root.conf == NODES

    def test_initial_supporters_are_conf0(self):
        state = initial_state(NODES, SCHEME)
        assert initial_supporters(state) == NODES

    def test_set_times(self):
        state = initial_state(NODES, SCHEME)
        bumped = state.set_times([1, 2], 4)
        assert state.time_of(1) == 0  # original untouched
        assert bumped.time_of(1) == 4
        assert bumped.tree is state.tree

    def test_is_leader(self):
        state = initial_state(NODES, SCHEME).set_times([1], 3)
        assert state.is_leader(1, 3)
        assert not state.is_leader(1, 2)
        assert state.is_leader(2, 0)

    def test_with_tree(self):
        state = initial_state(NODES, SCHEME)
        tree, _ = state.tree.add_leaf(0, root_cache(NODES, SCHEME))
        swapped = state.with_tree(tree)
        assert len(swapped.tree) == 2
        assert swapped.times == state.times

    def test_states_are_hashable_values(self):
        a = initial_state(NODES, SCHEME)
        b = initial_state(NODES, SCHEME)
        assert a == b
        assert hash(a) == hash(b)
        assert a.set_times([1], 1) != a
