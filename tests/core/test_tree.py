"""Unit tests for the cache tree (Fig. 6: addLeaf, insertBtw, ancestry)."""

import pytest

from repro.core import CacheTree, UnknownCache
from repro.core.tree import ROOT_CID

from ..helpers import build_tree, cc, ec, mc, rc, root


@pytest.fixture
def simple_tree():
    """root -> E1 -> M1 -> M2, plus a fork E2 under root."""
    return build_tree({
        1: (0, ec(1, 1)),
        2: (1, mc(1, 1, 1)),
        3: (2, mc(1, 1, 2)),
        4: (0, ec(2, 2)),
    })


def test_initial_tree_has_only_root():
    tree = CacheTree.initial(root())
    assert len(tree) == 1
    assert tree.parent(ROOT_CID) is None
    assert tree.is_well_formed()


def test_fresh_cid_is_max_plus_one(simple_tree):
    assert simple_tree.fresh_cid() == 5


def test_add_leaf_returns_new_tree(simple_tree):
    new_tree, cid = simple_tree.add_leaf(3, mc(1, 1, 3))
    assert cid == 5
    assert len(new_tree) == len(simple_tree) + 1
    # Original tree untouched (immutability).
    assert 5 not in simple_tree
    assert new_tree.parent(5) == 3


def test_add_leaf_unknown_parent_raises(simple_tree):
    with pytest.raises(UnknownCache):
        simple_tree.add_leaf(99, mc(1, 1, 3))


def test_insert_btw_reparents_children(simple_tree):
    # Insert a CCache between M1 (cid 2) and its child M2 (cid 3).
    new_tree, cid = simple_tree.insert_btw(2, cc(1, 1, 1))
    assert new_tree.parent(cid) == 2
    assert new_tree.parent(3) == cid
    assert new_tree.children(2) == (cid,)
    assert set(new_tree.children(cid)) == {3}


def test_insert_btw_on_leaf_acts_as_add_leaf(simple_tree):
    new_tree, cid = simple_tree.insert_btw(3, cc(1, 1, 2))
    assert new_tree.parent(cid) == 3
    assert new_tree.children(cid) == ()


def test_insert_btw_moves_all_children():
    tree = build_tree({
        1: (0, ec(1, 1)),
        2: (1, mc(1, 1, 1)),
        3: (1, mc(2, 1, 1)),
    })
    new_tree, cid = tree.insert_btw(1, mc(1, 1, 9))
    assert set(new_tree.children(cid)) == {2, 3}
    assert new_tree.children(1) == (cid,)


def test_ancestors_and_branch(simple_tree):
    assert simple_tree.ancestors(3) == [2, 1, 0]
    assert simple_tree.ancestors(3, include_self=True) == [3, 2, 1, 0]
    assert simple_tree.branch(3) == [0, 1, 2, 3]


def test_is_ancestor_strict_and_nonstrict(simple_tree):
    assert simple_tree.is_ancestor(0, 3)
    assert simple_tree.is_ancestor(1, 3)
    assert not simple_tree.is_ancestor(3, 1)
    assert not simple_tree.is_ancestor(3, 3)
    assert simple_tree.is_ancestor(3, 3, strict=False)
    assert not simple_tree.is_ancestor(4, 3)


def test_same_branch(simple_tree):
    assert simple_tree.same_branch(1, 3)
    assert simple_tree.same_branch(3, 1)
    assert simple_tree.same_branch(2, 2)
    assert not simple_tree.same_branch(3, 4)


def test_nearest_common_ancestor(simple_tree):
    assert simple_tree.nearest_common_ancestor(3, 4) == 0
    assert simple_tree.nearest_common_ancestor(2, 3) == 2
    assert simple_tree.nearest_common_ancestor(3, 3) == 3


def test_path_between_excludes_endpoints(simple_tree):
    # 3 -> 2 -> 1 -> 0 -> 4; endpoints 3 and 4 excluded.
    assert simple_tree.path_between(3, 4) == [2, 1, 0]
    # Ancestor relation: path from 1 to 3 is just the middle cache.
    assert simple_tree.path_between(1, 3) == [2]
    assert simple_tree.path_between(2, 3) == []


def test_descendants(simple_tree):
    assert simple_tree.descendants(1) == [2, 3]
    assert simple_tree.descendants(1, include_self=True) == [1, 2, 3]
    assert set(simple_tree.descendants(0)) == {1, 2, 3, 4}


def test_leaves(simple_tree):
    assert simple_tree.leaves() == [3, 4]


def test_max_cache_uses_order_then_cid(simple_tree):
    assert simple_tree.max_cache([1, 2, 3]) == 3  # largest (time, vrsn)
    assert simple_tree.max_cache([3, 4]) == 4      # time 2 beats time 1
    assert simple_tree.max_cache([]) is None


def test_selectors(simple_tree):
    assert simple_tree.ecaches() == [1, 4]
    assert simple_tree.ccaches() == [0]
    assert simple_tree.rcaches() == []


def test_items_in_cid_order(simple_tree):
    cids = [cid for cid, _ in simple_tree.items()]
    assert cids == sorted(cids)


def test_well_formed_simple(simple_tree):
    assert simple_tree.is_well_formed()


def test_wf_detects_missing_parent():
    from repro.core import TreeEntry

    tree = CacheTree({
        0: TreeEntry(None, root()),
        5: TreeEntry(7, mc(1, 1, 1)),
    })
    problems = tree.well_formedness_violations()
    assert any("unknown parent" in p for p in problems)


def test_wf_detects_second_root():
    from repro.core import TreeEntry

    tree = CacheTree({
        0: TreeEntry(None, root()),
        1: TreeEntry(None, ec(1, 1)),
    })
    problems = tree.well_formedness_violations()
    assert any("second root" in p for p in problems)


def test_wf_detects_nonzero_ecache_version():
    bad = ec(1, 1)
    object.__setattr__(bad, "vrsn", 3)
    tree = build_tree({1: (0, bad)})
    problems = tree.well_formedness_violations()
    assert any("nonzero version" in p for p in problems)


def test_wf_detects_ccache_under_wrong_parent():
    tree = build_tree({
        1: (0, ec(1, 1)),
        2: (1, cc(1, 1, 0)),  # CCache directly under an ECache
    })
    problems = tree.well_formedness_violations()
    assert any("expected MCache or RCache" in p for p in problems)


def test_wf_detects_ccache_time_mismatch():
    tree = build_tree({
        1: (0, ec(1, 1)),
        2: (1, mc(1, 1, 1)),
        3: (2, cc(1, 2, 5)),  # wrong time/vrsn
    })
    problems = tree.well_formedness_violations()
    assert any("differ" in p for p in problems)


def test_tree_equality_and_hash(simple_tree):
    clone = build_tree({
        1: (0, ec(1, 1)),
        2: (1, mc(1, 1, 1)),
        3: (2, mc(1, 1, 2)),
        4: (0, ec(2, 2)),
    })
    assert simple_tree == clone
    assert hash(simple_tree) == hash(clone)
    bigger, _ = simple_tree.add_leaf(3, mc(1, 1, 3))
    assert bigger != simple_tree


def test_render_mentions_every_cache(simple_tree):
    text = simple_tree.render()
    for cid in simple_tree.cids():
        assert f"[{cid}]" in text


def test_contains_and_len(simple_tree):
    assert 3 in simple_tree
    assert 99 not in simple_tree
    assert len(simple_tree) == 5


def test_rcaches_selector():
    tree = build_tree({
        1: (0, ec(1, 1)),
        2: (1, rc(1, 1, 1, conf=frozenset({1, 2}))),
    })
    assert tree.rcaches() == [2]


# ---------------------------------------------------------------------------
# Bounded intern-table eviction (repro.core.cachemgr)


def test_flush_trims_provenance_of_all_table_members():
    """Regression: an epoch flush must drop the ``"prov"`` memo entry
    from every interned tree -- survivors included.

    Provenance tuples hold a strong reference to the parent tree, so a
    surviving frontier tree would otherwise pin its *entire* flushed
    ancestor chain for the rest of the run, defeating the flush.
    """
    import gc
    import weakref

    from repro.core.tree import flush_interned_trees, tree_cache_stats

    tree = CacheTree.initial(root())
    parent_cid = ROOT_CID
    ancestors = []
    for t in range(1, 30):
        tree, parent_cid = tree.add_leaf(parent_cid, mc(1, t, t))
        ancestors.append(weakref.ref(tree))
    tip = tree
    del tree
    ancestors, tip_ref = ancestors[:-1], ancestors[-1]
    assert tip_ref() is tip

    before = tree_cache_stats()["prov_trimmed"]
    flush_interned_trees()
    gc.collect()

    assert tree_cache_stats()["prov_trimmed"] > before
    assert "prov" not in (tip._memo or {})
    # With provenance trimmed, nothing references the flushed chain.
    leaked = [ref for ref in ancestors if ref() is not None]
    assert not leaked, f"{len(leaked)} flushed ancestors still pinned"


def test_successors_reestablish_provenance_after_flush():
    from repro.core.tree import flush_interned_trees

    tree = CacheTree.initial(root())
    tree, cid = tree.add_leaf(ROOT_CID, mc(1, 1, 1))
    flush_interned_trees()
    assert "prov" not in (tree._memo or {})
    child, _ = tree.add_leaf(cid, mc(1, 2, 2))
    assert (child._memo or {}).get("prov") is not None
