"""Unit tests for rdist and the safety/invariant checkers (Section 4,
Appendix B)."""

from repro.core import (
    check_ccache_in_rcache_fork,
    check_descendant_order,
    check_election_commit_order,
    check_leader_time_uniqueness,
    check_replicated_state_safety,
    check_state,
    committed_log,
    committed_methods,
    is_committed,
    max_ccache,
    rdist,
    tree_rdist,
)
from repro.core.figures import fig4_unsafe_machine, fig5_machine
from repro.core.tree import ROOT_CID

from ..helpers import build_tree, cc, ec, mc, rc


def forked_tree():
    """root -> E1 -> {R1(t1,v1), E2 -> R2 -> C2}; the Fig. 12 skeleton."""
    n = frozenset({1, 2, 3, 4})
    return build_tree({
        0: (None, cc(0, 0, 0, conf=n, voters=n)),
        1: (0, ec(1, 1, conf=n, voters={1, 2, 3})),
        2: (1, rc(1, 1, 1, conf=frozenset({1, 2, 3}))),
        3: (0, ec(2, 2, conf=n, voters={2, 3, 4})),
        4: (3, rc(2, 2, 1, conf=frozenset({1, 2, 4}))),
        5: (4, cc(2, 2, 1, conf=frozenset({1, 2, 4}), voters={2, 4})),
    })


# ----------------------------------------------------------------------
# rdist
# ----------------------------------------------------------------------

def test_rdist_zero_on_rcache_free_path():
    tree = build_tree({
        1: (0, ec(1, 1)),
        2: (1, mc(1, 1, 1)),
        3: (1, mc(1, 1, 2)),
    })
    assert rdist(tree, 2, 3) == 0
    assert tree_rdist(tree) == 0


def test_rdist_counts_rcaches_between():
    tree = forked_tree()
    # Path between R1's child-side and C2 passes through R1? No: between
    # cid 2 (R1) and cid 5 (C2): path is 1, 0, 3, 4 -> contains R2 (cid 4).
    assert rdist(tree, 2, 5) == 1
    # Between the two RCaches: path 1, 0, 3 has no RCaches.
    assert rdist(tree, 2, 4) == 0


def test_rdist_excludes_endpoints():
    tree = forked_tree()
    assert rdist(tree, 4, 4) == 0
    assert rdist(tree, 3, 4) == 0  # R2 is an endpoint


def test_rdist_through_nca_counts_both_legs():
    n = frozenset({1, 2, 3, 4})
    tree = build_tree({
        0: (None, cc(0, 0, 0, conf=n, voters=n)),
        1: (0, ec(1, 1, conf=n)),
        2: (1, rc(1, 1, 1, conf=frozenset({1, 2, 3}))),
        3: (2, mc(1, 1, 2, conf=frozenset({1, 2, 3}))),
        4: (1, rc(2, 2, 1, conf=frozenset({1, 2, 4}))),
        5: (4, mc(2, 2, 2, conf=frozenset({1, 2, 4}))),
    })
    # Leaf-to-leaf path crosses both RCaches.
    assert rdist(tree, 3, 5) == 2
    assert tree_rdist(tree) == 2


def test_fig4_tree_rdist_is_two():
    machine, _ = fig4_unsafe_machine()
    assert tree_rdist(machine.state.tree) == 2


# ----------------------------------------------------------------------
# Commit extraction
# ----------------------------------------------------------------------

def test_is_committed_via_descendant_ccache():
    machine, labels = fig5_machine()
    tree = machine.state.tree
    assert is_committed(tree, labels["M1"])
    assert not is_committed(tree, labels["M2"])
    assert not is_committed(tree, labels["M3"])


def test_max_ccache_and_committed_log():
    machine, labels = fig5_machine()
    tree = machine.state.tree
    assert max_ccache(tree) == labels["C1"]
    assert committed_log(tree) == [labels["M1"]]
    assert committed_methods(tree) == ["M1"]


def test_committed_log_empty_initially():
    tree = build_tree({})
    assert max_ccache(tree) == ROOT_CID
    assert committed_log(tree) == []
    assert committed_methods(tree) == []


def test_committed_log_includes_rcaches():
    tree = build_tree({
        1: (0, ec(1, 1)),
        2: (1, mc(1, 1, 1)),
        3: (2, cc(1, 1, 1, voters={1, 2})),
        4: (3, rc(1, 1, 2, conf=frozenset({1, 2}))),
        5: (4, cc(1, 1, 2, conf=frozenset({1, 2}), voters={1, 2})),
    })
    assert committed_log(tree) == [2, 4]
    assert committed_methods(tree) == ["m", frozenset({1, 2})]


# ----------------------------------------------------------------------
# Safety checkers
# ----------------------------------------------------------------------

def test_safety_holds_on_linear_commits():
    machine, _ = fig5_machine()
    assert check_replicated_state_safety(machine.state.tree) == []


def test_safety_detects_divergent_ccaches():
    tree = forked_tree()
    # Add a commit on R1's branch to create the violation.
    tree, _ = tree.add_leaf(2, cc(1, 1, 1, conf=frozenset({1, 2, 3}), voters={1, 3}))
    violations = check_replicated_state_safety(tree)
    assert len(violations) >= 1
    assert "different branches" in violations[0]


def test_descendant_order_holds_on_figure_trees():
    machine, _ = fig5_machine()
    assert check_descendant_order(machine.state.tree) == []


def test_descendant_order_detects_inversion():
    tree = build_tree({
        1: (0, ec(1, 5)),
        2: (1, mc(1, 3, 1)),  # time goes backwards
    })
    problems = check_descendant_order(tree)
    assert problems


def test_leader_time_uniqueness_detects_duplicates():
    tree = build_tree({
        1: (0, ec(1, 1, voters={1, 2})),
        2: (0, ec(2, 1, voters={2, 3})),
    })
    assert check_leader_time_uniqueness(tree) != []
    # Restricting to rdist <= some bound still sees them (rdist 0 here).
    assert check_leader_time_uniqueness(tree, max_rdist=0) != []


def test_leader_time_uniqueness_respects_rdist_bound():
    n = frozenset({1, 2, 3, 4})
    conf_a = frozenset({1, 2, 3})
    conf_b = frozenset({1, 2, 4})
    tree = build_tree({
        0: (None, cc(0, 0, 0, conf=n, voters=n)),
        1: (0, rc(0, 0, 1, conf=conf_a)),
        2: (1, ec(1, 3, conf=conf_a, voters={1, 2})),
        3: (0, rc(0, 0, 2, conf=conf_b)),
        4: (3, ec(4, 3, conf=conf_b, voters={2, 4})),
    })
    # rdist between the two ECaches is 2 (both RCaches on the path).
    assert check_leader_time_uniqueness(tree, max_rdist=1) == []
    assert check_leader_time_uniqueness(tree, max_rdist=None) != []


def test_election_commit_order_detects_missing_history():
    machine, _ = fig4_unsafe_machine()
    tree = machine.state.tree
    # In the Fig. 4 violation, S1's final election (t3) is greater than
    # S2's CCache (t2) but on a different branch.
    assert check_election_commit_order(tree, max_rdist=None) != []


def test_election_commit_order_holds_on_safe_tree():
    machine, _ = fig5_machine()
    assert check_election_commit_order(machine.state.tree, max_rdist=None) == []


def test_ccache_in_rcache_fork_violated_without_r3():
    machine, _ = fig4_unsafe_machine()
    # R1 and R2 fork at the root with no CCache strictly between the
    # fork point and either RCache -- exactly what Lemma 4.4 forbids.
    assert check_ccache_in_rcache_fork(machine.state.tree) != []


def test_ccache_in_rcache_fork_ok_when_commit_intervenes():
    n = frozenset({1, 2, 3, 4})
    tree = build_tree({
        0: (None, cc(0, 0, 0, conf=n, voters=n)),
        1: (0, ec(1, 1, conf=n)),
        2: (1, mc(1, 1, 1, conf=n)),
        3: (2, cc(1, 1, 1, conf=n, voters={1, 2, 3})),
        4: (3, rc(1, 1, 2, conf=frozenset({1, 2, 3}))),
        5: (0, ec(2, 2, conf=n)),
        6: (5, rc(2, 2, 1, conf=frozenset({1, 2, 4}))),
    })
    # The CCache (cid 3) sits between the fork (root) and RCache 4.
    assert check_ccache_in_rcache_fork(tree) == []


def test_check_state_aggregates():
    machine, _ = fig5_machine()
    report = check_state(machine.state)
    assert report.ok
    assert report.all_violations() == []

    bad_machine, _ = fig4_unsafe_machine()
    report = check_state(bad_machine.state)
    assert not report.ok
    assert any("safety" in v for v in report.all_violations())


def test_assert_safe_raises():
    import pytest

    from repro.core import SafetyViolation, assert_safe

    machine, _ = fig4_unsafe_machine()
    with pytest.raises(SafetyViolation):
        assert_safe(machine.state)
