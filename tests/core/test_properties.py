"""Property-based tests (hypothesis): randomized valid executions of the
Adore semantics preserve every safety invariant, and some structural
meta-properties (append-only trees, monotone time maps).

These are the randomized large-neighbourhood complement to the bounded
exhaustive model checker in ``repro.mc``.
"""

from hypothesis import given, settings, strategies as st

from repro.core import (
    apply_invoke,
    apply_pull,
    apply_push,
    apply_reconfig,
    check_state,
    enumerate_pull_outcomes,
    enumerate_push_outcomes,
    initial_state,
)
from repro.core.aux import active_cache
from repro.schemes import RaftSingleNodeScheme

UNIVERSE = [1, 2, 3, 4]
SCHEME = RaftSingleNodeScheme()


def random_step(state, data, method_counter):
    """Draw one valid operation and apply it; returns the new state."""
    nid = data.draw(st.sampled_from(UNIVERSE), label="nid")
    op = data.draw(
        st.sampled_from(["pull", "invoke", "reconfig", "push"]), label="op"
    )
    if op == "pull":
        options = enumerate_pull_outcomes(state, nid, SCHEME)
        if not options:
            return state
        outcome = data.draw(st.sampled_from(options), label="pull-outcome")
        state, _, _ = apply_pull(state, nid, outcome, SCHEME)
        return state
    if op == "invoke":
        method_counter[0] += 1
        state, _, _ = apply_invoke(state, nid, f"m{method_counter[0]}")
        return state
    if op == "reconfig":
        active = active_cache(state.tree, nid)
        if active is None:
            return state
        conf = frozenset(state.tree.cache(active).conf)
        # Single-node neighbours of the current configuration.
        candidates = [conf]
        candidates.extend(conf | {n} for n in UNIVERSE if n not in conf)
        candidates.extend(conf - {n} for n in conf if len(conf) > 1)
        new_conf = data.draw(st.sampled_from(candidates), label="new-conf")
        state, _, _ = apply_reconfig(state, nid, new_conf, SCHEME)
        return state
    options = enumerate_push_outcomes(state, nid, SCHEME)
    if not options:
        return state
    outcome = data.draw(st.sampled_from(options), label="push-outcome")
    state, _, _ = apply_push(state, nid, outcome, SCHEME)
    return state


@settings(max_examples=120, deadline=None)
@given(st.data())
def test_random_valid_runs_preserve_all_invariants(data):
    state = initial_state(frozenset(UNIVERSE), SCHEME)
    counter = [0]
    steps = data.draw(st.integers(min_value=1, max_value=10), label="steps")
    for _ in range(steps):
        state = random_step(state, data, counter)
        report = check_state(state, lemma_rdist_bound=1)
        assert report.ok, "\n".join(
            report.all_violations() + ["", state.tree.render()]
        )


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_tree_is_append_only(data):
    """Caches are never removed and their payloads never change; only
    ``insert_btw`` may re-parent an existing cache."""
    state = initial_state(frozenset(UNIVERSE), SCHEME)
    counter = [0]
    steps = data.draw(st.integers(min_value=1, max_value=8), label="steps")
    for _ in range(steps):
        before = dict(state.tree.items())
        state = random_step(state, data, counter)
        after = dict(state.tree.items())
        for cid, cache in before.items():
            assert cid in after
            assert after[cid] == cache


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_observed_times_are_monotone(data):
    state = initial_state(frozenset(UNIVERSE), SCHEME)
    counter = [0]
    steps = data.draw(st.integers(min_value=1, max_value=8), label="steps")
    for _ in range(steps):
        before = {n: state.time_of(n) for n in UNIVERSE}
        state = random_step(state, data, counter)
        for n in UNIVERSE:
            assert state.time_of(n) >= before[n]


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_committed_log_grows_by_extension(data):
    """The committed command sequence is only ever extended -- the
    client-visible formulation of replicated state safety."""
    from repro.core import committed_log

    state = initial_state(frozenset(UNIVERSE), SCHEME)
    counter = [0]
    previous = committed_log(state.tree)
    steps = data.draw(st.integers(min_value=1, max_value=10), label="steps")
    for _ in range(steps):
        state = random_step(state, data, counter)
        current = committed_log(state.tree)
        assert current[: len(previous)] == previous
        previous = current
