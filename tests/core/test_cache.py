"""Unit tests for cache variants and the cache order (Fig. 6/9)."""

import pytest

from repro.core import (
    CCache,
    ECache,
    MCache,
    RCache,
    cache_ge,
    cache_gt,
    is_ccache,
    is_committable,
    is_ecache,
    is_mcache,
    is_rcache,
    order_key,
)

CONF = frozenset({1, 2, 3})


def test_ecache_supporters_are_voters():
    cache = ECache(caller=1, time=2, vrsn=0, conf=CONF, voters=frozenset({1, 2}))
    assert cache.supporters == frozenset({1, 2})


def test_ecache_observers_are_caller_only():
    # Voting does not transfer the leader's log (see Fig. 4 discussion),
    # but winning adopts the branch: only the caller observes.
    cache = ECache(caller=1, time=2, vrsn=0, conf=CONF, voters=frozenset({1, 2}))
    assert cache.observers == frozenset({1})


def test_mcache_supporter_and_observer_is_caller():
    cache = MCache(caller=2, time=1, vrsn=1, conf=CONF, method="m")
    assert cache.supporters == frozenset({2})
    assert cache.observers == frozenset({2})


def test_rcache_supporter_is_caller():
    cache = RCache(caller=3, time=1, vrsn=2, conf=CONF)
    assert cache.supporters == frozenset({3})
    assert cache.observers == frozenset({3})


def test_ccache_supporters_and_observers_are_voters():
    cache = CCache(caller=1, time=1, vrsn=1, conf=CONF, voters=frozenset({1, 3}))
    assert cache.supporters == frozenset({1, 3})
    assert cache.observers == frozenset({1, 3})


def test_kind_tags():
    assert ECache(1, 1, 0, CONF).kind == "E"
    assert MCache(1, 1, 1, CONF, method="m").kind == "M"
    assert RCache(1, 1, 1, CONF).kind == "R"
    assert CCache(1, 1, 1, CONF).kind == "C"


def test_kind_predicates():
    e = ECache(1, 1, 0, CONF)
    m = MCache(1, 1, 1, CONF, method="m")
    r = RCache(1, 1, 2, CONF)
    c = CCache(1, 1, 2, CONF)
    assert is_ecache(e) and not is_ecache(m)
    assert is_mcache(m) and not is_mcache(r)
    assert is_rcache(r) and not is_rcache(c)
    assert is_ccache(c) and not is_ccache(e)
    assert is_committable(m) and is_committable(r)
    assert not is_committable(e) and not is_committable(c)


def test_order_time_dominates():
    early = MCache(1, 1, 9, CONF, method="m")
    late = ECache(2, 2, 0, CONF)
    assert cache_gt(late, early)
    assert not cache_gt(early, late)


def test_order_version_breaks_time_ties():
    v1 = MCache(1, 1, 1, CONF, method="a")
    v2 = MCache(1, 1, 2, CONF, method="b")
    assert cache_gt(v2, v1)


def test_ccache_beats_equal_time_version():
    # The CCache tie-break that makes > total (Fig. 9).
    m = MCache(1, 3, 2, CONF, method="m")
    c = CCache(1, 3, 2, CONF, voters=frozenset({1, 2}))
    assert cache_gt(c, m)
    assert not cache_gt(m, c)


def test_order_is_irreflexive():
    m = MCache(1, 1, 1, CONF, method="m")
    assert not cache_gt(m, m)
    assert cache_ge(m, m)


def test_order_key_is_lexicographic():
    assert order_key(MCache(1, 2, 5, CONF, method="m")) == (2, 5, 0)
    assert order_key(CCache(1, 2, 5, CONF)) == (2, 5, 1)


def test_caches_are_hashable_and_frozen():
    cache = MCache(1, 1, 1, CONF, method="m")
    assert hash(cache) == hash(MCache(1, 1, 1, CONF, method="m"))
    with pytest.raises(AttributeError):
        cache.time = 5


def test_describe_is_compact():
    assert ECache(1, 2, 0, CONF).describe() == "E(n1,t2,v0)"
    assert CCache(3, 4, 5, CONF).describe() == "C(n3,t4,v5)"
