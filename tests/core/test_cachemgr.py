"""Tests for the bounded intern-table cache manager (ISSUE 10 tentpole).

Eviction only ever discards *memoized pure values* (interned trees,
interned caches, derived memo scratch) -- everything is recomputable --
so every policy must be semantically invisible: the model-checker
parity suite (``tests/mc/test_bounded.py``) pins that end to end, and
these tests pin the mechanics (caps trigger flushes, policies keep
what they promise, the facade restores state).
"""

import pytest

from repro.core import CacheTree, cachemgr
from repro.core.cache import cache_intern_stats, flush_interned_caches
from repro.core.tree import (
    ROOT_CID,
    flush_interned_trees,
    set_tree_pin_provider,
    tree_cache_policy,
    tree_cache_stats,
)

from ..helpers import mc, root


@pytest.fixture(autouse=True)
def _restore_policy():
    """Every test runs under the default policy and leaves it behind."""
    previous = cachemgr.current_policy()
    yield
    cachemgr.configure(previous)
    flush_interned_trees()
    flush_interned_caches()


def grow_chain(length, start_time=1):
    """A chain of ``length`` distinct interned trees; returns them all."""
    tree = CacheTree.initial(root())
    parent = ROOT_CID
    out = [tree]
    for t in range(start_time, start_time + length):
        tree, parent = tree.add_leaf(parent, mc(1, t, t))
        out.append(tree)
    return out


class TestPolicyFacade:
    def test_default_policy_values(self):
        policy = cachemgr.DEFAULT_POLICY
        assert policy.wipe == cachemgr.WIPE_ALL
        assert policy.tree_cap >= 1
        assert policy.cache_cap >= 1

    def test_bounded_restores_previous_policy(self):
        before = cachemgr.current_policy()
        with cachemgr.bounded(tree_cap=8, wipe=cachemgr.WIPE_RECALL):
            active = cachemgr.current_policy()
            assert active.tree_cap == 8
            assert active.wipe == cachemgr.WIPE_RECALL
            assert tree_cache_policy() == (8, cachemgr.WIPE_RECALL)
        assert cachemgr.current_policy() == before

    def test_bounded_restores_on_exception(self):
        before = cachemgr.current_policy()
        with pytest.raises(RuntimeError):
            with cachemgr.bounded(tree_cap=4):
                raise RuntimeError("boom")
        assert cachemgr.current_policy() == before

    def test_invalid_policies_rejected(self):
        with pytest.raises(ValueError):
            cachemgr.CachePolicy(tree_cap=0, cache_cap=16, wipe="all")
        with pytest.raises(ValueError):
            cachemgr.CachePolicy(tree_cap=16, cache_cap=0, wipe="all")
        with pytest.raises(ValueError):
            cachemgr.CachePolicy(tree_cap=16, cache_cap=16, wipe="bogus")

    def test_stats_shape(self):
        stats = cachemgr.stats()
        for table in ("tree_interns", "cache_interns"):
            assert "flushes" in stats[table]
            assert "occupancy" in stats[table]


class TestWipePolicies:
    def test_cap_triggers_flush_and_bounds_occupancy(self):
        flush_interned_trees()
        with cachemgr.bounded(tree_cap=16, wipe=cachemgr.WIPE_ALL):
            before = tree_cache_stats()["flushes"]
            trees = grow_chain(64)
            stats = tree_cache_stats()
            assert stats["flushes"] > before
            assert stats["occupancy"] <= 32  # cap + one window of growth
            assert stats["evicted"] > 0
        assert trees  # the objects themselves are untouched by eviction

    def test_subnodes_keeps_pinned_trees_identity_stable(self):
        flush_interned_trees()
        # grow_chain(4): hot == base.add_leaf(parent_cid=3, mc(1, 4, 4)).
        chain = grow_chain(4)
        base, hot = chain[-2], chain[-1]
        previous = set_tree_pin_provider(
            lambda: [base.fingerprint(), hot.fingerprint()]
        )
        try:
            with cachemgr.bounded(tree_cap=8, wipe=cachemgr.WIPE_SUBNODES):
                grow_chain(32, start_time=100)  # force flushes
                assert tree_cache_stats()["flushes"] >= 1
                # Re-deriving the pinned successor finds the *same*
                # interned object: it survived every flush.
                again, _ = base.add_leaf(3, mc(1, 4, 4))
                assert again is hot
        finally:
            set_tree_pin_provider(previous)

    def test_wipe_all_drops_unpinned_identity(self):
        flush_interned_trees()
        chain = grow_chain(4)
        base, hot = chain[-2], chain[-1]
        with cachemgr.bounded(tree_cap=8, wipe=cachemgr.WIPE_ALL):
            flush_interned_trees()
            again, _ = base.add_leaf(3, mc(1, 4, 4))
            # Equal tree, new object: the old one was evicted.
            assert again == hot and again is not hot

    def test_recall_keeps_hot_trees(self):
        flush_interned_trees()
        with cachemgr.bounded(tree_cap=16, wipe=cachemgr.WIPE_RECALL):
            chain = grow_chain(2)
            base, hot = chain[-2], chain[-1]
            for _ in range(10):  # re-derivations count as recalls
                again, _ = base.add_leaf(1, mc(1, 2, 2))
                assert again is hot
            cold_chain = grow_chain(6, start_time=100)
            cold_base, cold = cold_chain[-2], cold_chain[-1]
            flush_interned_trees()  # recall policy applies here
            again, _ = base.add_leaf(1, mc(1, 2, 2))
            assert again is hot  # most-recalled tree survived
            cold_again, _ = cold_base.add_leaf(5, mc(1, 105, 105))
            assert cold_again == cold and cold_again is not cold


class TestCacheInternTable:
    def test_cache_cap_flushes_and_clears_entry_fps(self):
        with cachemgr.bounded(tree_cap=1 << 16, cache_cap=32):
            before = cache_intern_stats()["flushes"]
            grow_chain(64)  # interns >32 distinct caches
            assert cache_intern_stats()["flushes"] > before
            # The fingerprint memo keyed by cache identity must have
            # been cleared with the table (id-stability soundness).
            flush_interned_caches()
            assert tree_cache_stats()["entry_fp_occupancy"] == 0


class TestMetricsExport:
    def test_export_metrics_publishes_gauges(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        cachemgr.export_metrics(registry)
        snapshot = registry.snapshot()
        names = set(snapshot["gauges"])
        assert "cachemgr.tree_interns.occupancy" in names
        assert "cachemgr.cache_interns.flushes" in names
