"""The incremental observed-log checker behind the runtime monitors.

These drive :class:`repro.core.safety.IncrementalTreeChecker` directly
with hand-built log observations -- the same call shape the simulated
cluster's ``check_safety`` and the live monitor's event fold use -- and
assert it stays silent on legal histories while flagging the Appendix-B
violations the Fig. 4 schedule seeds.
"""

from dataclasses import dataclass
from typing import Any

import pytest

from repro.core.safety import DEFAULT_LOG_INVARIANTS, IncrementalTreeChecker


@dataclass(frozen=True)
class E:
    """A duck-typed log entry (the engine must not require LogEntry)."""

    time: int
    vrsn: int
    payload: Any
    is_config: bool = False


CONF0 = frozenset({1, 2, 3})


def checker(**kwargs):
    return IncrementalTreeChecker(CONF0, **kwargs)


class TestCleanHistories:
    def test_identical_replicated_logs_stay_clean(self):
        engine = checker()
        log = [E(1, 1, ("put", "x", 1)), E(1, 2, ("put", "x", 2))]
        for nid in (1, 2, 3):
            assert engine.observe(nid, 0, log, commit_len=2) is None
        assert engine.ok
        stats = engine.stats()
        assert stats["entries"] == 2  # the trie shares agreeing logs
        # One marker: committing through #1 subsumes the prefix.
        assert stats["commits"] == 1
        assert stats["nodes"] == [1, 2, 3]
        assert engine.violations() == []

    def test_incremental_suffixes_extend_below_commit_markers(self):
        engine = checker()
        engine.observe(1, 0, [E(1, 1, "a")], commit_len=1)
        # The next advance shares the committed prefix: base=1.
        engine.observe(1, 1, [E(1, 2, "b")], commit_len=2)
        engine.observe(1, 2, [E(1, 3, "c")], commit_len=2)
        assert engine.ok
        assert engine.stats()["entries"] == 3
        assert engine.stats()["commits"] == 2

    def test_follower_adopting_leader_branch_is_clean(self):
        engine = checker()
        # S2 speculates an uncommitted entry, then adopts the leader's.
        engine.observe(2, 0, [E(1, 1, "stale")], commit_len=0)
        engine.observe(1, 0, [E(2, 1, "fresh")], commit_len=1)
        engine.observe(2, 0, [E(2, 1, "fresh")], commit_len=1)
        assert engine.ok

    def test_barrier_then_reconfig_is_clean(self):
        # The clean half of the Fig. 4 schedule: the old leader's config
        # entry is stranded uncommitted, and the new leader commits a
        # no-op barrier of its own term *before* appending its config
        # entry -- R3's guarantee, which B.8 accepts.
        engine = checker()
        shared = [E(1, 1, ("put", "x", 1))]
        for nid in (1, 2, 3):
            engine.observe(nid, 0, shared, commit_len=1)
        engine.observe(1, 1, [E(1, 2, frozenset({1, 2}), True)], commit_len=1)
        engine.observe(2, 1, [E(2, 1, ("noop",))], commit_len=1)
        engine.observe(2, 1, [E(2, 1, ("noop",))], commit_len=2)
        report = engine.observe(
            2, 2, [E(2, 2, frozenset({2, 3}), True)], commit_len=2
        )
        assert report is None and engine.ok


class TestViolations:
    def test_divergent_commits_violate_safety(self):
        engine = checker()
        engine.observe(1, 0, [E(1, 1, "a")], commit_len=1)
        report = engine.observe(2, 0, [E(2, 1, "b")], commit_len=1)
        assert report is not None
        assert not engine.ok
        assert any("safety" in line for line in engine.violations())
        # The offending event is named for the bundle manifest.
        assert engine.violation_event is not None

    def test_forked_reconfigs_without_barrier_violate_b8(self):
        # The buggy half of the Fig. 4 schedule: two leaders append
        # config entries on divergent branches with no committed entry
        # between the fork and either RCache.
        engine = checker()
        shared = [E(1, 1, ("put", "x", 1))]
        for nid in (1, 2, 3):
            engine.observe(nid, 0, shared, commit_len=1)
        engine.observe(1, 1, [E(1, 2, frozenset({1, 2}), True)], commit_len=1)
        report = engine.observe(
            2, 1, [E(2, 1, frozenset({2, 3}), True)], commit_len=1
        )
        assert report is not None
        assert any(
            "ccache-in-rcache-fork" in line for line in engine.violations()
        )

    def test_checking_freezes_at_first_violation(self):
        engine = checker()
        engine.observe(1, 0, [E(1, 1, "a")], commit_len=1)
        first = engine.observe(2, 0, [E(2, 1, "b")], commit_len=1)
        assert first is not None
        frozen = list(engine.violations())
        # Later advances keep the trie consistent but return None and
        # leave the recorded verdict untouched.
        assert engine.observe(3, 0, [E(3, 1, "c")], commit_len=1) is None
        assert engine.violations() == frozen


class TestGapsAndAnchors:
    def test_unanchored_gap_is_counted_and_skipped(self):
        engine = checker()
        report = engine.observe(1, 5, [E(1, 1, "x")], commit_len=0)
        assert report is None
        assert engine.stats()["gaps"] == 1
        assert engine.ok

    def test_snapshot_gap_reanchors_on_peer_placement(self):
        engine = checker()
        log = [E(1, 1, "a"), E(1, 2, "b")]
        engine.observe(1, 0, log, commit_len=2)
        # S2 installed a snapshot covering both entries it never
        # exported; its advance names the snapshot's last entry.
        report = engine.observe(
            2, 2, [E(1, 3, "c")], commit_len=2, anchor_entry=log[-1]
        )
        assert report is None
        assert engine.stats()["gaps"] == 0
        assert engine.ok
        # The anchored entry lands on S1's branch: extending S1 with the
        # same entry adds nothing new.
        engine.observe(1, 2, [E(1, 3, "c")], commit_len=2)
        assert engine.stats()["entries"] == 3

    def test_ambiguous_anchor_refuses_to_guess(self):
        engine = checker(lemma_rdist_bound=None)
        # The same (position, entry) pair exists on two branches ...
        engine.observe(1, 0, [E(1, 1, "a"), E(3, 1, "c")], commit_len=0)
        engine.observe(2, 0, [E(2, 1, "b"), E(3, 1, "c")], commit_len=0)
        # ... so an advance anchored on it must be skipped, not guessed.
        engine.observe(
            3, 2, [E(3, 2, "d")], commit_len=0, anchor_entry=E(3, 1, "c")
        )
        assert engine.stats()["gaps"] == 1


class TestConfiguration:
    def test_invariant_labels_are_validated(self):
        with pytest.raises(ValueError):
            checker(invariants=("no-such-lemma",))

    def test_default_invariants_cover_the_log_lemmas(self):
        assert "safety" in DEFAULT_LOG_INVARIANTS
        assert "ccache-in-rcache-fork" in DEFAULT_LOG_INVARIANTS

    def test_unhashable_payloads_are_frozen_not_fatal(self):
        # Client commands carry arbitrary JSON: a kvstore put of an
        # object gives the entry a dict-bearing payload.  The engine
        # keys its trie on payloads, so it must freeze them -- and
        # equal dicts must land on the same trie node regardless of
        # insertion order.
        engine = checker()
        a = E(1, 1, ("put", "user:1", {"id": 1, "balance": 101}))
        b = E(1, 1, ("put", "user:1", {"balance": 101, "id": 1}))
        assert engine.observe(1, 0, [a], commit_len=1) is None
        assert engine.observe(2, 0, [b], commit_len=1) is None
        assert engine.ok
        stats = engine.stats()
        assert stats["entries"] == 1  # one shared trie node, no fork
        assert stats["gaps"] == 0
