"""Tests for the Fig. 2 client interfaces (SMR / ADO styles)."""

import pytest

from repro.core import (
    FAIL,
    AdoreMachine,
    PullOk,
    PushOk,
    RandomOracle,
    ScriptedOracle,
    committed_methods,
)
from repro.core.smr import AdoStyleClient, RpcTimeout, SmrClient
from repro.schemes import RaftSingleNodeScheme

NODES = frozenset({1, 2, 3})
SCHEME = RaftSingleNodeScheme()
F = frozenset


def machine_with(outcomes):
    return AdoreMachine.create(NODES, SCHEME, ScriptedOracle(outcomes))


class TestAdoStyleClient:
    def test_happy_path_matches_fig2(self):
        machine = machine_with([
            PullOk(group=F({1, 2}), time=1),
            PushOk(group=F({1, 3}), target=2),
        ])
        client = AdoStyleClient(machine, nid=1)
        assert client.update("put(a,1)")
        assert committed_methods(machine.state.tree) == ["put(a,1)"]

    def test_pull_failure_returns_fail(self):
        machine = machine_with([FAIL])
        client = AdoStyleClient(machine, nid=1)
        assert not client.update("m")
        assert not client.has_active_cache

    def test_push_failure_returns_fail_but_keeps_cache(self):
        machine = machine_with([
            PullOk(group=F({1, 2}), time=1),
            FAIL,
        ])
        client = AdoStyleClient(machine, nid=1)
        assert not client.update("m")
        assert client.has_active_cache  # may retry the push later

    def test_invoke_after_preemption_fails(self):
        machine = machine_with([
            PullOk(group=F({1, 2}), time=1),
            PullOk(group=F({1, 2, 3}), time=2),  # another leader preempts
        ])
        client = AdoStyleClient(machine, nid=1)
        assert client.pull()
        machine.pull(2)
        assert not client.invoke("m")
        assert not client.has_active_cache

    def test_reuses_active_cache_across_updates(self):
        machine = machine_with([
            PullOk(group=F({1, 2}), time=1),
            PushOk(group=F({1, 2}), target=2),
            PushOk(group=F({1, 2}), target=4),
        ])
        client = AdoStyleClient(machine, nid=1)
        assert client.update("m1")
        assert client.update("m2")  # no second pull needed
        assert committed_methods(machine.state.tree) == ["m1", "m2"]


class TestSmrClient:
    def test_rpc_call_returns_slot(self):
        machine = AdoreMachine.create(
            NODES, SCHEME, RandomOracle(seed=1, fail_prob=0.0, quorums_only=True)
        )
        client = SmrClient(machine, nid=1)
        assert client.rpc_call("a") == 0
        assert client.rpc_call("b") == 1

    def test_rpc_call_retries_through_failures(self):
        machine = AdoreMachine.create(
            NODES, SCHEME, RandomOracle(seed=3, fail_prob=0.5, quorums_only=True)
        )
        client = SmrClient(machine, nid=1, max_retries=30)
        slot = client.rpc_call("persistent")
        assert committed_methods(machine.state.tree)[slot] == "persistent"
        assert client.stats.retries >= 0

    def test_rpc_call_times_out(self):
        machine = machine_with([FAIL, FAIL, FAIL])
        client = SmrClient(machine, nid=1, max_retries=3)
        with pytest.raises(RpcTimeout):
            client.rpc_call("m")

    def test_partial_push_still_counts_when_committed(self):
        # The push commits only a prefix, but if our method is in it the
        # call succeeded.
        machine = machine_with([
            PullOk(group=F({1, 2}), time=1),
            PushOk(group=F({1, 2}), target=2),  # commits m1 only
        ])
        client = SmrClient(machine, nid=1, max_retries=1)
        slot = client.rpc_call("m1")
        assert slot == 0

    def test_stats_accumulate(self):
        machine = AdoreMachine.create(
            NODES, SCHEME, RandomOracle(seed=5, fail_prob=0.0, quorums_only=True)
        )
        client = SmrClient(machine, nid=1)
        client.rpc_call("a")
        client.rpc_call("b")
        assert client.stats.pulls >= 1
        assert client.stats.invokes >= 2
        assert client.stats.pushes >= 2
