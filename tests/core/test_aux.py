"""Unit tests for the auxiliary definitions (Fig. 9/26): mostRecent,
activeCache, lastCommit, canCommit, R2, R3, canReconf."""

from repro.core import (
    can_commit,
    can_reconf,
    active_cache,
    last_commit,
    most_recent,
    r2_holds,
    r3_holds,
    valid_supp,
)
from repro.core.tree import ROOT_CID
from repro.schemes import RaftSingleNodeScheme

from ..helpers import NODES3, build_tree, cc, ec, mc, rc, state_of

SCHEME = RaftSingleNodeScheme()


def linear_tree():
    """root -> E1(t1) -> M1 -> C1 -> M2 (C1 acked by {1,2})."""
    return build_tree({
        1: (0, ec(1, 1, voters={1, 2, 3})),
        2: (1, mc(1, 1, 1)),
        3: (2, cc(1, 1, 1, voters={1, 2})),
        4: (3, mc(1, 1, 2)),
    })


def test_most_recent_falls_back_to_root():
    tree = build_tree({})
    assert most_recent(tree, {1, 2}) == ROOT_CID


def test_most_recent_ignores_election_votes():
    # Node 3 voted for E1 but observed nothing else: its most recent
    # *observed* cache is still the root.
    tree = build_tree({1: (0, ec(1, 1, voters={1, 2, 3}))})
    assert most_recent(tree, {3}) == ROOT_CID


def test_most_recent_sees_commit_acks():
    tree = linear_tree()
    # Node 2 acked C1, so its most recent observation is the CCache.
    assert most_recent(tree, {2}) == 3


def test_most_recent_sees_own_method_caches():
    tree = linear_tree()
    # Node 1 called M2 (t1, v2), which is greater than C1 (t1, v1).
    assert most_recent(tree, {1}) == 4


def test_most_recent_takes_max_across_group():
    tree = linear_tree()
    assert most_recent(tree, {1, 2, 3}) == 4
    assert most_recent(tree, {2, 3}) == 3


def test_active_cache_none_without_calls():
    tree = build_tree({})
    assert active_cache(tree, 1) is None


def test_active_cache_is_latest_called():
    tree = linear_tree()
    # Node 1 called E1, M1, C1, M2; M2 (t1, v2) is greatest.
    assert active_cache(tree, 1) == 4
    assert active_cache(tree, 2) is None


def test_active_cache_ignores_root():
    # Root has caller 0; node 0 still has no active cache.
    tree = build_tree({})
    assert active_cache(tree, 0) is None


def test_last_commit_defaults_to_root():
    tree = linear_tree()
    # Node 3 acked no commit beyond the root.
    assert last_commit(tree, 3) == ROOT_CID


def test_last_commit_tracks_acks():
    tree = linear_tree()
    assert last_commit(tree, 1) == 3
    assert last_commit(tree, 2) == 3


def test_valid_supp():
    cache = mc(1, 1, 1, conf=NODES3)
    assert valid_supp(1, {1, 2}, cache, SCHEME)
    assert not valid_supp(3, {1, 2}, cache, SCHEME)       # caller not in Q
    assert not valid_supp(1, {1, 4}, cache, SCHEME)       # 4 outside config


def test_can_commit_requires_committable_cache():
    tree = linear_tree()
    state = state_of(tree, {1: 1})
    assert not can_commit(tree, 1, 1, state)   # ECache
    assert not can_commit(tree, 3, 1, state)   # CCache


def test_can_commit_requires_caller_and_leadership():
    tree = linear_tree()
    assert can_commit(tree, 4, 1, state_of(tree, {1: 1}))
    assert not can_commit(tree, 4, 2, state_of(tree, {2: 1}))  # not caller
    assert not can_commit(tree, 4, 1, state_of(tree, {1: 2}))  # preempted


def test_can_commit_requires_newer_than_last_commit():
    tree = linear_tree()
    state = state_of(tree, {1: 1})
    # M1 (t1, v1) is not greater than C1 (t1, v1, CCache tie-break).
    assert not can_commit(tree, 2, 1, state)
    assert can_commit(tree, 4, 1, state)


def test_r2_holds_on_clean_branch():
    tree = linear_tree()
    assert r2_holds(tree, 4)


def test_r2_blocks_uncommitted_rcache_ancestor():
    tree = build_tree({
        1: (0, ec(1, 1)),
        2: (1, rc(1, 1, 1, conf=frozenset({1, 2}))),
        3: (2, mc(1, 1, 2, conf=frozenset({1, 2}))),
    })
    assert not r2_holds(tree, 3)
    # The RCache itself is also blocked from further reconfiguration.
    assert not r2_holds(tree, 2)


def test_r2_allows_committed_rcache_ancestor():
    tree = build_tree({
        1: (0, ec(1, 1)),
        2: (1, rc(1, 1, 1, conf=frozenset({1, 2}))),
        3: (2, cc(1, 1, 1, conf=frozenset({1, 2}), voters={1, 2})),
        4: (3, mc(1, 1, 2, conf=frozenset({1, 2}))),
    })
    assert r2_holds(tree, 4)


def test_r3_requires_current_term_commit():
    tree = build_tree({
        1: (0, ec(1, 1)),
        2: (1, mc(1, 1, 1)),
    })
    # Only the root CCache (time 0) is on the branch; M has time 1.
    assert not r3_holds(tree, 2)


def test_r3_satisfied_by_commit_at_current_time():
    tree = linear_tree()
    assert r3_holds(tree, 4)   # C1 at t1 is an ancestor of M2 (t1)


def test_r3_counts_the_cache_itself():
    tree = linear_tree()
    # The CCache itself (cid 3) trivially satisfies R3.
    assert r3_holds(tree, 3)


def test_can_reconf_combines_r1_r2_r3():
    tree = linear_tree()
    assert can_reconf(tree, 4, frozenset({1, 2}), SCHEME)          # drop 3
    assert not can_reconf(tree, 4, frozenset({1}), SCHEME)         # R1+: two at once
    assert not can_reconf(tree, 4, frozenset(), SCHEME)            # empty config
