"""Tests for the log-merge tree reconstruction (Section 4.1's remark)."""

from repro.raft import RaftSystem, run_buggy
from repro.refinement.treeify import treeify
from repro.schemes import RaftSingleNodeScheme

CONF = frozenset({1, 2, 3})
SCHEME = RaftSingleNodeScheme()


def healthy_system():
    system = RaftSystem(CONF, SCHEME)
    system.elect(1)
    system.deliver_all()
    system.invoke(1, "a")
    system.invoke(1, "b")
    system.commit(1)
    system.deliver_all()
    return system


class TestTreeify:
    def test_shared_logs_share_caches(self):
        system = healthy_system()
        result = treeify(system)
        # All three replicas have identical logs: one branch, and all
        # positions coincide.
        assert len(set(result.positions.values())) == 1
        assert result.tree.is_well_formed()

    def test_empty_logs_sit_at_root(self):
        system = RaftSystem(CONF, SCHEME)
        result = treeify(system)
        assert set(result.positions.values()) == {0}

    def test_commit_markers_inserted(self):
        system = healthy_system()
        result = treeify(system)
        ccaches = result.tree.ccaches()
        # Root plus the committed prefix marker.
        assert len(ccaches) == 2

    def test_divergent_logs_fork(self):
        system = RaftSystem(CONF, SCHEME)
        system.elect(1)
        system.deliver_all(lambda m: m.to != 3 and m.frm != 3)
        system.invoke(1, "a")       # only in S1's log
        system.elect(3)             # S3 campaigns, log empty
        result = treeify(system)
        assert result.positions[1] != result.positions[3]
        assert result.rdist_between(1, 3) == 0  # no reconfigs involved

    def test_rdist_zero_for_agreeing_replicas(self):
        result = treeify(healthy_system())
        assert result.rdist_between(1, 2) == 0

    def test_fig4_network_run_treeifies_to_the_paper_tree(self):
        # The buggy network run's logs, merged, show exactly the Fig. 12
        # structure: divergent RCaches with commits on both branches,
        # rdist 2 between the two leaders.
        outcome = run_buggy()
        result = treeify(outcome.system)
        # Log *tips* are one reconfiguration apart (each tip is itself
        # an RCache-side endpoint, excluded by Definition 4.2)...
        assert result.rdist_between(1, 2) == 1
        # ...but the committed markers sit below both RCaches: the
        # tree's maximal rdist is 2, exactly the Fig. 12 shape.
        from repro.core import tree_rdist

        assert tree_rdist(result.tree) == 2
        violations = result.safety_violations()
        assert violations, result.tree.render()
        assert "different branches" in violations[0]

    def test_fixed_run_treeifies_safely(self):
        from repro.raft import run_fixed

        outcome = run_fixed()
        result = treeify(outcome.system)
        assert result.safety_violations() == []

    def test_cross_validation_agreement(self):
        """The network-level prefix check and the tree-based check agree
        on both the buggy and the healthy run."""
        buggy = run_buggy()
        assert bool(buggy.system.check_log_safety()) == bool(
            treeify(buggy.system).safety_violations()
        )
        healthy = healthy_system()
        assert bool(healthy.check_log_safety()) == bool(
            treeify(healthy).safety_violations()
        )
