"""Cross-level validation: random asynchronous network executions,
merged into cache trees, satisfy the model's tree-based invariants.

This closes the loop between the abstraction levels: §4.1 argues the
cache tree natively carries the structure (rdist, commit linearity)
that network states only hold implicitly; here we *rebuild* the tree
from arbitrary network runs (R2/R3 enforced) and check Definition 4.1
plus the applicable Appendix-B invariants on it -- and confirm the
ablated protocol fails the same checkers.
"""

from hypothesis import given, settings, strategies as st

from repro.core import (
    check_ccache_in_rcache_fork,
    check_descendant_order,
    check_replicated_state_safety,
    tree_rdist,
)
from repro.raft import RaftSystem, run_buggy
from repro.refinement.treeify import treeify
from repro.schemes import RaftSingleNodeScheme

UNIVERSE = [1, 2, 3, 4]
CONF0 = frozenset({1, 2, 3})
SCHEME = RaftSingleNodeScheme()


def random_network_run(data, steps, enforce_r3=True):
    system = RaftSystem(CONF0, SCHEME, enforce_r3=enforce_r3,
                        extra_nodes=UNIVERSE)
    counter = 0
    for step in range(steps):
        op = data.draw(
            st.sampled_from(
                ["elect", "invoke", "reconfig", "commit", "deliver",
                 "deliver", "deliver"]
            ),
            label=f"op{step}",
        )
        nid = data.draw(st.sampled_from(UNIVERSE), label=f"nid{step}")
        if op == "elect":
            system.elect(nid)
        elif op == "invoke":
            counter += 1
            system.invoke(nid, f"m{counter}")
        elif op == "reconfig":
            conf = frozenset(system.servers[nid].config())
            options = [conf | {n} for n in UNIVERSE if n not in conf]
            options += [conf - {n} for n in conf if len(conf) > 1]
            system.reconfig(
                nid, data.draw(st.sampled_from(options), label=f"cf{step}")
            )
        else:
            if op == "commit":
                system.commit(nid)
                continue
            pending = list(system.network.in_flight())
            if pending:
                system.deliver(
                    data.draw(st.sampled_from(pending), label=f"m{step}")
                )
    return system


@settings(max_examples=80, deadline=None)
@given(st.data())
def test_treeified_network_states_satisfy_tree_invariants(data):
    steps = data.draw(st.integers(min_value=5, max_value=30), label="steps")
    system = random_network_run(data, steps)
    result = treeify(system)
    tree = result.tree
    assert check_replicated_state_safety(tree) == [], tree.render()
    assert check_ccache_in_rcache_fork(tree) == [], tree.render()
    assert check_descendant_order(tree) == [], tree.render()


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_network_and_tree_safety_checks_agree(data):
    steps = data.draw(st.integers(min_value=5, max_value=25), label="steps")
    system = random_network_run(data, steps)
    network_verdict = bool(system.check_log_safety())
    tree_verdict = bool(treeify(system).safety_violations())
    assert network_verdict == tree_verdict


def test_buggy_run_fails_the_tree_checkers_too():
    outcome = run_buggy()
    result = treeify(outcome.system)
    assert result.safety_violations()
    assert tree_rdist(result.tree) == 2
