"""Tests for the SRaft → Adore simulation checker (Lemma C.1)."""

import pytest

from repro.core import SafetyViolation
from repro.refinement import SimulationChecker
from repro.schemes import RaftSingleNodeScheme

CONF = frozenset({1, 2, 3})
SCHEME = RaftSingleNodeScheme()


def checker(**kwargs):
    return SimulationChecker(CONF, SCHEME, **kwargs)


class TestBasicSimulation:
    def test_election_preserves_relation(self):
        sim = checker()
        record = sim.elect(1, [2, 3])
        assert record.ok
        assert sim.ok

    def test_command_lifecycle(self):
        sim = checker()
        sim.elect(1, [2, 3])
        sim.invoke(1, "a")
        sim.commit(1, [2, 3])
        sim.invoke(1, "b")
        sim.commit(1, [3])
        assert sim.ok
        assert len(sim.steps) == 5

    def test_partial_commit_keeps_relation(self):
        # Only one follower receives the log: its branch position moves,
        # the other's does not.
        sim = checker()
        sim.elect(1, [2, 3])
        sim.invoke(1, "a")
        sim.commit(1, [2])
        assert sim.ok
        assert sim.obs.get(2) != sim.obs.get(3)

    def test_leader_change(self):
        sim = checker()
        sim.elect(1, [2, 3])
        sim.invoke(1, "a")
        sim.commit(1, [2, 3])
        sim.elect(2, [1, 3])
        sim.invoke(2, "b")
        sim.commit(2, [1, 3])
        assert sim.ok

    def test_denied_votes_become_failed_pulls(self):
        sim = checker()
        sim.elect(1, [2, 3])
        sim.invoke(1, "a")
        # Candidate 3 has an empty log; leader 1's log is longer, so if
        # 1 is a receiver it denies, and Adore mirrors the denial as a
        # singleton pull that bumps 1's timestamp.
        record = sim.elect(3, [1])
        assert record.ok
        assert not sim.sraft.servers[3].role == "leader"
        assert sim.adore.time_of(1) == sim.sraft.servers[1].time

    def test_reconfiguration_round_trip(self):
        sim = checker(extra_nodes=[4])
        sim.elect(1, [2, 3])
        sim.invoke(1, "a")
        sim.commit(1, [2, 3])
        sim.reconfig(1, frozenset({1, 2, 3, 4}))
        sim.commit(1, [2, 3, 4])
        sim.invoke(1, "b")
        sim.commit(1, [2, 4])
        assert sim.ok

    def test_reconfig_denied_on_both_sides(self):
        sim = checker()
        sim.elect(1, [2, 3])
        record = sim.reconfig(1, frozenset({1, 2}))
        assert record.ok
        assert "refused on both sides" in record.description

    def test_heartbeat_stutter(self):
        sim = checker()
        sim.elect(1, [2, 3])
        sim.invoke(1, "a")
        sim.commit(1, [2])
        # A second commit round with nothing new: Adore stutters but the
        # remaining follower catches up.
        record = sim.commit(1, [3])
        assert record.ok
        assert "stutter" in record.description
        assert sim.obs.get(3) == sim.obs.get(1)

    def test_report_renders(self):
        sim = checker()
        sim.elect(1, [2, 3])
        sim.invoke(1, "x")
        text = sim.report()
        assert "[ok]" in text
        assert "elect(1)" in text


class TestMismatchDetection:
    def test_corrupting_a_log_breaks_the_relation(self):
        sim = checker(raise_on_mismatch=False)
        sim.elect(1, [2, 3])
        sim.invoke(1, "a")
        # Sabotage: silently corrupt a server's log out-of-band.
        from repro.raft import LogEntry

        sim.sraft.servers[2].log = (LogEntry(9, 9, "evil"),)
        record = sim.commit(1, [2])
        assert not record.ok

    def test_raise_on_mismatch(self):
        sim = checker(raise_on_mismatch=True)
        sim.elect(1, [2, 3])
        from repro.raft import LogEntry

        sim.sraft.servers[3].log = (LogEntry(9, 9, "evil"),)
        with pytest.raises(SafetyViolation):
            sim.invoke(1, "a")


class TestLongerRandomizedSimulation:
    def test_random_schedule_preserves_relation(self):
        import random

        rng = random.Random(42)
        sim = checker(raise_on_mismatch=True, extra_nodes=[4])
        nodes = [1, 2, 3, 4]
        counter = 0
        for _ in range(60):
            op = rng.choice(["elect", "invoke", "commit", "reconfig"])
            nid = rng.choice(nodes)
            others = [n for n in nodes if n != nid]
            group = rng.sample(others, rng.randint(0, len(others)))
            try:
                if op == "elect":
                    sim.elect(nid, group)
                elif op == "invoke":
                    counter += 1
                    sim.invoke(nid, f"m{counter}")
                elif op == "commit":
                    sim.commit(nid, group)
                else:
                    server = sim.sraft.servers[nid]
                    conf = frozenset(server.config())
                    choices = [conf | {n} for n in nodes if n not in conf]
                    choices += [conf - {n} for n in conf if len(conf) > 1]
                    sim.reconfig(nid, rng.choice(choices))
            except Exception as exc:  # noqa: BLE001
                from repro.core.errors import InvalidOperation

                # SRaft's global-ordering guard may reject out-of-order
                # rounds from stale leaders; that is a scheduling
                # refusal, not a refinement failure.
                if isinstance(exc, InvalidOperation):
                    continue
                raise
        assert sim.ok
