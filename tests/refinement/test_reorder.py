"""Tests for the Appendix C trace transformations."""

import random

import pytest

from repro.raft import Deliver, ElectAck, ElectReq, RaftSystem
from repro.refinement import (
    atomic_groups,
    check_equivalent,
    delivery_key,
    filter_invalid,
    globally_order,
    normalize,
    replay,
)
from repro.schemes import RaftSingleNodeScheme

CONF = frozenset({1, 2, 3})
SCHEME = RaftSingleNodeScheme()


def scrambled_trace(seed=0, steps=14):
    """An asynchronous run with randomly interleaved deliveries."""
    rng = random.Random(seed)
    system = RaftSystem(CONF, SCHEME)
    counter = 0
    for _ in range(steps):
        op = rng.choice(["elect", "invoke", "commit", "deliver", "deliver"])
        nid = rng.choice(sorted(CONF))
        if op == "elect":
            system.elect(nid)
        elif op == "invoke":
            counter += 1
            system.invoke(nid, f"m{counter}")
        elif op == "commit":
            system.commit(nid)
        else:
            pending = list(system.network.in_flight())
            if pending:
                system.deliver(rng.choice(pending))
    return system.trace


class TestFilterInvalid:
    def test_keeps_effective_deliveries(self):
        system = RaftSystem(CONF, SCHEME)
        system.elect(1)
        system.deliver_all()
        filtered = filter_invalid(CONF, SCHEME, system.trace)
        # The election requests and the quorum-forming ack survive; the
        # surplus ack (arriving after the candidate already won) is an
        # ignored message, so Definition C.2 drops it.
        assert [e for e in system.trace if e in filtered] == filtered
        dropped = [e for e in system.trace if e not in filtered]
        assert len(dropped) == 1
        assert check_equivalent(CONF, SCHEME, system.trace, filtered) == []

    def test_drops_stale_deliveries(self):
        system = RaftSystem(CONF, SCHEME)
        system.elect(1)   # time 1, requests in flight
        system.elect(1)   # time 2, more requests
        # Deliver time-2 requests first, then the stale time-1 ones.
        pending = sorted(
            system.network.in_flight(), key=lambda m: -m.time
        )
        for msg in pending:
            system.deliver(msg)
        filtered = filter_invalid(CONF, SCHEME, system.trace)
        dropped = [e for e in system.trace if e not in filtered]
        assert dropped
        assert all(isinstance(e, Deliver) and e.msg.time == 1 for e in dropped)

    @pytest.mark.parametrize("seed", range(6))
    def test_equivalence_lemma_c3(self, seed):
        trace = scrambled_trace(seed)
        filtered = filter_invalid(CONF, SCHEME, trace)
        assert check_equivalent(CONF, SCHEME, trace, filtered) == []


class TestGlobalOrdering:
    def test_key_orders_requests_before_acks(self):
        req = ElectReq(frm=1, to=2, time=3, log=())
        ack = ElectAck(frm=2, to=1, time=3, granted=True)
        assert delivery_key(req) < delivery_key(ack)

    @pytest.mark.parametrize("seed", range(6))
    def test_equivalence_lemma_c7(self, seed):
        trace = filter_invalid(CONF, SCHEME, scrambled_trace(seed))
        ordered = globally_order(CONF, SCHEME, trace)
        assert check_equivalent(CONF, SCHEME, trace, ordered) == []

    @pytest.mark.parametrize("seed", range(6))
    def test_deliveries_are_time_monotone(self, seed):
        trace = filter_invalid(CONF, SCHEME, scrambled_trace(seed))
        ordered = globally_order(CONF, SCHEME, trace)
        times = [e.msg.time for e in ordered if isinstance(e, Deliver)]
        # Per-recipient order is preserved exactly; globally, times of
        # *adjacent* deliveries may only be inverted when the pair does
        # not commute.  The overall trend must be sorted up to those
        # forced inversions -- check the weaker, checkable property that
        # the multiset is unchanged and no strictly-commutable inversion
        # remains (the transformation reaches a fixed point).
        again = globally_order(CONF, SCHEME, ordered)
        assert again == ordered

    def test_per_recipient_order_preserved(self):
        trace = filter_invalid(CONF, SCHEME, scrambled_trace(3))
        ordered = globally_order(CONF, SCHEME, trace)
        for nid in CONF:
            original = [
                e.msg for e in trace
                if isinstance(e, Deliver) and e.msg.to == nid
            ]
            reordered = [
                e.msg for e in ordered
                if isinstance(e, Deliver) and e.msg.to == nid
            ]
            assert original == reordered


class TestAtomicGroups:
    def test_groups_share_round_identity(self):
        trace = normalize(CONF, SCHEME, scrambled_trace(2))
        groups = atomic_groups(trace)
        flattened = [e for group in groups for e in group]
        assert flattened == list(trace)
        for group in groups:
            deliveries = [e for e in group if isinstance(e, Deliver)]
            if len(deliveries) > 1:
                times = {e.msg.time for e in deliveries}
                assert len(times) == 1

    def test_non_deliveries_are_singletons(self):
        trace = normalize(CONF, SCHEME, scrambled_trace(4))
        for group in atomic_groups(trace):
            if not isinstance(group[0], Deliver):
                assert len(group) == 1


class TestPipeline:
    @pytest.mark.parametrize("seed", range(8))
    def test_lemma_c10_full_pipeline(self, seed):
        trace = scrambled_trace(seed, steps=18)
        transformed = normalize(CONF, SCHEME, trace)
        assert check_equivalent(CONF, SCHEME, trace, transformed) == []

    def test_replay_helper(self):
        trace = scrambled_trace(1)
        system = replay(CONF, SCHEME, trace)
        assert set(system.servers) == CONF
