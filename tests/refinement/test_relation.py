"""Tests for toLog/logMatch/ℝ_net (Fig. 17-18)."""

from repro.core.figures import fig5_machine
from repro.raft import RaftSystem
from repro.refinement import ObservationMap, r_net, to_log
from repro.schemes import RaftSingleNodeScheme

CONF = frozenset({1, 2, 3})
SCHEME = RaftSingleNodeScheme()


class TestToLog:
    def test_root_is_empty_log(self):
        machine, _ = fig5_machine()
        assert to_log(machine.state.tree, 0) == ()

    def test_m_and_r_caches_become_entries(self):
        machine, labels = fig5_machine()
        tree = machine.state.tree
        log = to_log(tree, labels["R1"])
        assert [e.payload for e in log] == ["M1", "M2", frozenset({1, 2, 3, 4})]
        assert [e.is_config for e in log] == [False, False, True]

    def test_ecache_and_ccache_invisible(self):
        machine, labels = fig5_machine()
        tree = machine.state.tree
        # Branch through E2 contains E1, C1, E2 -- none are log entries.
        log = to_log(tree, labels["E2"])
        assert [e.payload for e in log] == ["M1"]

    def test_entries_carry_time_and_version(self):
        machine, labels = fig5_machine()
        log = to_log(machine.state.tree, labels["M2"])
        assert [(e.time, e.vrsn) for e in log] == [(1, 1), (1, 2)]


class TestRNet:
    def build(self, script):
        system = RaftSystem(CONF, SCHEME)
        script(system)
        return system

    def test_identical_systems_match(self):
        def script(system):
            system.elect(1)
            system.deliver_all()

        assert r_net(self.build(script), self.build(script)) == []

    def test_log_difference_detected(self):
        def one(system):
            system.elect(1)
            system.deliver_all()
            system.invoke(1, "a")

        def two(system):
            system.elect(1)
            system.deliver_all()

        problems = r_net(self.build(one), self.build(two))
        assert any("logs differ" in p for p in problems)

    def test_time_difference_detected(self):
        def one(system):
            system.elect(1)

        def two(system):
            system.elect(1)
            system.elect(1)

        problems = r_net(self.build(one), self.build(two))
        assert any("times differ" in p for p in problems)


class TestObservationMap:
    def test_defaults_to_root(self):
        obs = ObservationMap([1, 2, 3])
        assert obs.get(1) == 0
        assert obs.get(99) == 0

    def test_advance(self):
        obs = ObservationMap([1])
        obs.advance(1, 5)
        assert obs.get(1) == 5
