"""Unit tests for scheme #7: MongoDB logless dynamic reconfiguration.

Beyond the usual R1⁺/quorum behavior, these pin the load-bearing
correspondence the differential harness relies on: the protocol's own
enabling conditions -- Q1 (config quorum check) and Q2 (oplog
commitment check), evaluated as Adore cache-tree predicates -- coincide
with Adore's rules R2 and R3 on every reachable state.
"""

from collections import deque

from repro.core.aux import active_cache, r2_holds, r3_holds
from repro.mc import Explorer, OpBudget
from repro.schemes import (
    LoglessConfig,
    LoglessReconfigScheme,
    as_logless,
    check_assumptions,
    config_quorum_check,
    logless_reconfig_candidates,
    oplog_commitment_check,
)

SCHEME = LoglessReconfigScheme()
ABC = frozenset({1, 2, 3})


# ----------------------------------------------------------------------
# LoglessConfig and coercion
# ----------------------------------------------------------------------

def test_order_compares_term_before_version():
    low = LoglessConfig.of(5, 1, ABC)
    high = LoglessConfig.of(0, 2, ABC)
    assert high.newer_than(low)  # term dominates any version lead
    assert not low.newer_than(high)
    assert LoglessConfig.of(3, 1, ABC).newer_than(LoglessConfig.of(2, 1, ABC))


def test_as_logless_coercions():
    assert as_logless(ABC) == LoglessConfig.of(0, 0, ABC)  # bootstrap
    assert as_logless((4, 2, {1, 2})) == LoglessConfig.of(4, 2, {1, 2})
    cf = LoglessConfig.of(1, 1, ABC)
    assert as_logless(cf) is cf


def test_repr_is_stable():
    assert (
        repr(LoglessConfig.of(1, 2, {3, 1, 2}))
        == "LoglessConfig(v=1, t=2, members=[1, 2, 3])"
    )


# ----------------------------------------------------------------------
# The scheme protocol
# ----------------------------------------------------------------------

def test_r1_plus_reflexive_and_single_node_advance():
    cf = LoglessConfig.of(0, 0, ABC)
    assert SCHEME.r1_plus(cf, cf)
    assert SCHEME.r1_plus(cf, LoglessConfig.of(1, 0, {1, 2, 3, 4}))
    assert SCHEME.r1_plus(cf, LoglessConfig.of(0, 1, {1, 2}))


def test_r1_plus_rejects_multi_node_stale_and_empty():
    cf = LoglessConfig.of(1, 1, ABC)
    # Two members change at once.
    assert not SCHEME.r1_plus(cf, LoglessConfig.of(2, 1, {1, 4, 5}))
    # (term, version) does not advance.
    assert not SCHEME.r1_plus(cf, LoglessConfig.of(1, 1, {1, 2}))
    assert not SCHEME.r1_plus(cf, LoglessConfig.of(0, 1, {1, 2}))
    assert not SCHEME.r1_plus(cf, LoglessConfig.of(5, 0, {1, 2}))
    # Empty target.
    assert not SCHEME.r1_plus(
        LoglessConfig.of(0, 0, {1}), LoglessConfig.of(1, 0, frozenset())
    )


def test_quorums_are_majorities_of_members():
    cf = LoglessConfig.of(2, 1, {1, 2, 3, 4})
    assert SCHEME.members(cf) == frozenset({1, 2, 3, 4})
    assert SCHEME.is_quorum({1, 2, 3}, cf)
    assert not SCHEME.is_quorum({1, 2}, cf)
    assert SCHEME.is_quorum({1, 2, 3, 9}, cf)  # outsiders don't count


def test_assumptions_hold_on_four_node_universe():
    report = check_assumptions(SCHEME, [1, 2, 3, 4])
    assert report.ok
    assert report.configs_checked > 100
    assert report.transition_pairs > 1000


# ----------------------------------------------------------------------
# Q1/Q2 <=> R2/R3 on every reachable state
# ----------------------------------------------------------------------

def _reachable_states(explorer, limit=4000):
    seen = {explorer.state_key(explorer.initial())}
    states = [explorer.initial()]
    queue = deque([(explorer.initial(), explorer.budget)])
    while queue and len(states) < limit:
        state, budget = queue.popleft()
        for _, nxt, nxt_budget, key in explorer.expand(state, budget):
            if key in seen:
                continue
            seen.add(key)
            states.append(nxt)
            queue.append((nxt, nxt_budget))
    return states


def test_q1_q2_coincide_with_r2_r3_on_reachable_states():
    # Explore with R2/R3 *off* so states violating either rule are
    # reachable and the equivalence is tested on both sides.
    explorer = Explorer(
        scheme=SCHEME,
        conf0=LoglessConfig.initial(ABC),
        callers=[1, 2],
        budget=OpBudget(pulls=2, invokes=1, reconfigs=2, pushes=2),
        reconfig_candidates=logless_reconfig_candidates(ABC),
        enforce_r2=False,
        enforce_r3=False,
        quorum_pulls_only=True,
        invariants=["safety"],
        stop_at_first_violation=False,
    )
    states = _reachable_states(explorer)
    assert len(states) > 200
    checked = 0
    q1_failures = q2_failures = 0
    for state in states:
        for nid in (1, 2):
            active = active_cache(state.tree, nid)
            if active is None:
                continue
            checked += 1
            q1 = config_quorum_check(state.tree, active)
            q2 = oplog_commitment_check(state.tree, active)
            assert q1 == r2_holds(state.tree, active)
            assert q2 == r3_holds(state.tree, active)
            q1_failures += not q1
            q2_failures += not q2
    assert checked > 200
    # The equivalence was exercised on both truth values.
    assert q1_failures > 0
    assert q2_failures > 0


# ----------------------------------------------------------------------
# The gated candidate generator
# ----------------------------------------------------------------------

def _machine():
    from repro.core import AdoreMachine, RandomOracle

    return AdoreMachine.create(
        LoglessConfig.initial(ABC),
        SCHEME,
        RandomOracle(seed=1, fail_prob=0.0, quorums_only=True),
    )


def test_q2_blocks_reconfig_until_leader_commits_in_its_term():
    machine = _machine()
    machine.pull(1)
    machine.invoke(1, "m")
    # Nothing committed at the new term yet, so Q2 (and R3) block
    # reconfiguration -- exactly MongoDB's oplog commitment check.
    state = machine.state
    active = active_cache(state.tree, 1)
    assert not oplog_commitment_check(state.tree, active)
    conf = state.tree.cache(active).conf
    assert list(logless_reconfig_candidates(ABC)(state, 1, conf)) == []
    # Committing an entry of the leader's own term enables it.
    machine.push(1)
    state = machine.state
    active = active_cache(state.tree, 1)
    assert oplog_commitment_check(state.tree, active)
    assert config_quorum_check(state.tree, active)
    current = as_logless(state.tree.cache(active).conf)
    cands = list(logless_reconfig_candidates(ABC)(state, 1, current))
    assert cands
    # MongoDB installs (version + 1, leader_term, members +- one node).
    assert all(c.version == current.version + 1 for c in cands)
    assert all(c.term == state.tree.cache(active).time for c in cands)
    assert all(len(c.members ^ current.members) == 1 for c in cands)
    assert all(SCHEME.r1_plus(current, c) for c in cands)


def test_q1_blocks_reconfig_while_config_entry_uncommitted():
    machine = _machine()
    machine.pull(1)
    machine.invoke(1, "m")
    machine.push(1)
    result = machine.reconfig(1, LoglessConfig.of(1, 1, {1, 2, 3, 4}))
    assert result.reason == "ok"
    # The new config entry is an uncommitted RCache: Q1 (and R2) veto a
    # further reconfiguration until it commits.
    state = machine.state
    active = active_cache(state.tree, 1)
    assert not config_quorum_check(state.tree, active)
    conf = state.tree.cache(active).conf
    assert list(logless_reconfig_candidates(ABC)(state, 1, conf)) == []
    # Committing the config entry re-enables reconfiguration.
    machine.push(1)
    state = machine.state
    active = active_cache(state.tree, 1)
    assert config_quorum_check(state.tree, active)
    conf = state.tree.cache(active).conf
    assert list(logless_reconfig_candidates(ABC)(state, 1, conf))
