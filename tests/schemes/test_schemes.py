"""Unit tests for the reconfiguration schemes (Section 6)."""

import pytest

from repro.schemes import (
    DynamicQuorumScheme,
    JointConfig,
    JointConsensusScheme,
    PrimaryBackupConfig,
    PrimaryBackupScheme,
    RaftSingleNodeScheme,
    RotatingPrimaryScheme,
    SizedConfig,
    StaticScheme,
    UnanimousScheme,
    UnsafeMultiNodeScheme,
    WeightedConfig,
    WeightedMajorityScheme,
)


class TestSingleNode:
    scheme = RaftSingleNodeScheme()

    def test_members(self):
        assert self.scheme.members(frozenset({1, 2})) == frozenset({1, 2})

    def test_majority_quorum(self):
        conf = frozenset({1, 2, 3})
        assert self.scheme.is_quorum({1, 2}, conf)
        assert not self.scheme.is_quorum({1}, conf)
        assert self.scheme.is_quorum({1, 2, 3, 9}, conf)  # outsiders ignored

    def test_r1_allows_one_server_change(self):
        a = frozenset({1, 2, 3})
        assert self.scheme.r1_plus(a, a)
        assert self.scheme.r1_plus(a, frozenset({1, 2}))
        assert self.scheme.r1_plus(a, frozenset({1, 2, 3, 4}))
        assert not self.scheme.r1_plus(a, frozenset({1}))
        assert not self.scheme.r1_plus(a, frozenset({1, 2, 4}))  # swap = 2 changes
        assert not self.scheme.r1_plus(a, frozenset())

    def test_validity(self):
        assert self.scheme.is_valid_config(frozenset({1}))
        assert not self.scheme.is_valid_config(frozenset())


class TestUnsafeMultiNode:
    scheme = UnsafeMultiNodeScheme()

    def test_allows_arbitrary_jumps(self):
        assert self.scheme.r1_plus(frozenset({1, 2, 3, 4}), frozenset({5, 6, 7}))

    def test_rejects_empty(self):
        assert not self.scheme.r1_plus(frozenset({1}), frozenset())


class TestJointConsensus:
    scheme = JointConsensusScheme()

    def test_joint_quorum_needs_both_majorities(self):
        conf = JointConfig.transition({1, 2, 3}, {3, 4, 5})
        assert self.scheme.is_quorum({1, 2, 3, 4}, conf)
        assert not self.scheme.is_quorum({1, 2}, conf)      # no new majority
        assert not self.scheme.is_quorum({4, 5}, conf)      # no old majority
        assert self.scheme.is_quorum({2, 3, 4}, conf)

    def test_stable_quorum_is_plain_majority(self):
        conf = JointConfig.stable({1, 2, 3})
        assert self.scheme.is_quorum({1, 2}, conf)
        assert not self.scheme.is_quorum({3}, conf)

    def test_r1_enter_and_leave_joint(self):
        stable = JointConfig.stable({1, 2, 3})
        joint = JointConfig.transition({1, 2, 3}, {4, 5, 6})
        landed = JointConfig.stable({4, 5, 6})
        assert self.scheme.r1_plus(stable, joint)
        assert self.scheme.r1_plus(joint, landed)
        assert not self.scheme.r1_plus(stable, landed)   # must go through joint
        assert self.scheme.r1_plus(stable, stable)       # REFLEXIVE

    def test_r1_rejects_wrong_old_set(self):
        stable = JointConfig.stable({1, 2, 3})
        joint = JointConfig.transition({1, 2}, {4, 5})
        assert not self.scheme.r1_plus(stable, joint)

    def test_members_is_union(self):
        conf = JointConfig.transition({1, 2}, {2, 3})
        assert self.scheme.members(conf) == frozenset({1, 2, 3})

    def test_plain_sets_accepted_as_stable(self):
        assert self.scheme.is_quorum({1, 2}, frozenset({1, 2, 3}))

    def test_describe(self):
        assert "+" in self.scheme.describe_config(
            JointConfig.transition({1}, {2})
        )


class TestPrimaryBackup:
    scheme = PrimaryBackupScheme()

    def test_quorum_is_any_set_with_primary(self):
        conf = PrimaryBackupConfig.of(1, {2, 3})
        assert self.scheme.is_quorum({1}, conf)
        assert self.scheme.is_quorum({1, 3}, conf)
        assert not self.scheme.is_quorum({2, 3}, conf)

    def test_backups_change_freely(self):
        a = PrimaryBackupConfig.of(1, {2, 3})
        b = PrimaryBackupConfig.of(1, {4, 5, 6})
        assert self.scheme.r1_plus(a, b)

    def test_primary_change_forbidden(self):
        a = PrimaryBackupConfig.of(1, {2})
        b = PrimaryBackupConfig.of(2, {1})
        assert not self.scheme.r1_plus(a, b)

    def test_primary_excluded_from_backups(self):
        conf = PrimaryBackupConfig.of(1, {1, 2})
        assert conf.backups == frozenset({2})


class TestRotatingPrimary:
    scheme = RotatingPrimaryScheme()

    def test_quorum_needs_primary_and_majority(self):
        conf = PrimaryBackupConfig.of(1, {2, 3})
        assert self.scheme.is_quorum({1, 2}, conf)
        assert not self.scheme.is_quorum({1}, conf)
        assert not self.scheme.is_quorum({2, 3}, conf)

    def test_handover_to_backup(self):
        a = PrimaryBackupConfig.of(1, {2, 3})
        b = PrimaryBackupConfig.of(2, {1, 3})
        assert self.scheme.r1_plus(a, b)

    def test_handover_to_outsider_forbidden(self):
        a = PrimaryBackupConfig.of(1, {2, 3})
        b = PrimaryBackupConfig.of(9, {1, 2, 3})
        assert not self.scheme.r1_plus(a, b)

    def test_backup_changes_bounded(self):
        a = PrimaryBackupConfig.of(1, {2, 3})
        assert self.scheme.r1_plus(a, PrimaryBackupConfig.of(1, {2, 3, 4}))
        assert not self.scheme.r1_plus(a, PrimaryBackupConfig.of(1, {4, 5}))


class TestDynamicQuorum:
    scheme = DynamicQuorumScheme()

    def test_quorum_threshold(self):
        conf = SizedConfig.of(3, {1, 2, 3, 4})
        assert self.scheme.is_quorum({1, 2, 3}, conf)
        assert not self.scheme.is_quorum({1, 2}, conf)

    def test_majority_constructor(self):
        conf = SizedConfig.majority({1, 2, 3, 4, 5})
        assert conf.quorum_size == 3

    def test_growth_bounded_by_quorum_sums(self):
        small = SizedConfig.of(2, {1, 2, 3})
        # Growing to 5 members needs q + q' > 5.
        big_ok = SizedConfig.of(4, {1, 2, 3, 4, 5})
        big_bad = SizedConfig.of(3, {1, 2, 3, 4, 5})
        assert self.scheme.r1_plus(small, big_ok)
        assert not self.scheme.r1_plus(small, big_bad)

    def test_incomparable_members_rejected(self):
        a = SizedConfig.of(2, {1, 2, 3})
        b = SizedConfig.of(2, {1, 2, 4})
        assert not self.scheme.r1_plus(a, b)

    def test_validity(self):
        assert not self.scheme.is_valid_config(SizedConfig(0, frozenset({1})))
        assert not self.scheme.is_valid_config(SizedConfig(3, frozenset({1})))
        assert self.scheme.is_valid_config(SizedConfig(1, frozenset({1})))

    def test_full_quorum_allows_large_change(self):
        # q = n lets n-1 members change at once (paper's observation).
        a = SizedConfig.of(3, {1, 2, 3})
        b = SizedConfig.of(5, {1, 2, 3, 4, 5, 6, 7})
        assert self.scheme.r1_plus(a, b)


class TestUnanimous:
    scheme = UnanimousScheme()

    def test_quorum_is_everyone(self):
        conf = frozenset({1, 2, 3})
        assert self.scheme.is_quorum({1, 2, 3}, conf)
        assert self.scheme.is_quorum({1, 2, 3, 4}, conf)
        assert not self.scheme.is_quorum({1, 2}, conf)

    def test_r1_needs_one_common_member(self):
        assert self.scheme.r1_plus(frozenset({1, 2, 3}), frozenset({3, 4, 5}))
        assert not self.scheme.r1_plus(frozenset({1, 2}), frozenset({3, 4}))


class TestWeighted:
    scheme = WeightedMajorityScheme()

    def test_weighted_quorum(self):
        conf = WeightedConfig.of({1: 3, 2: 1, 3: 1})
        assert self.scheme.is_quorum({1}, conf)        # 3 of 5
        assert not self.scheme.is_quorum({2, 3}, conf)  # 2 of 5

    def test_uniform_degenerates_to_majority(self):
        conf = WeightedConfig.uniform({1, 2, 3})
        assert self.scheme.is_quorum({1, 2}, conf)
        assert not self.scheme.is_quorum({1}, conf)

    def test_r1_single_addition_allowed(self):
        a = WeightedConfig.of({1: 1, 2: 1, 3: 1})
        b = WeightedConfig.of({1: 1, 2: 1, 3: 1, 4: 1})
        # q(a) + q(b) = 2 + 3 = 5 > |union| = 4: allowed.
        assert self.scheme.r1_plus(a, b)
        assert self.scheme.r1_plus(b, a)
        # Identical configs always pass (REFLEXIVE).
        assert self.scheme.r1_plus(a, a)

    def test_r1_two_node_swap_blocked(self):
        a = WeightedConfig.of({1: 1, 2: 1, 3: 1, 4: 1})
        b = WeightedConfig.of({1: 1, 2: 1, 5: 1, 6: 1})
        # q + q = 3 + 3 = 6, union weight 6: rejected.
        assert not self.scheme.r1_plus(a, b)

    def test_r1_weight_change_requires_two_steps(self):
        a = WeightedConfig.of({1: 1, 2: 1, 3: 1})
        b = WeightedConfig.of({1: 5, 2: 1, 3: 1})
        assert not self.scheme.r1_plus(a, b)

    def test_heavy_node_swap_blocked(self):
        # Adding a dominant node must be rejected: it could form a
        # quorum disjoint from the old majority.
        a = WeightedConfig.of({1: 1, 2: 1})
        b = WeightedConfig.of({1: 1, 2: 1, 3: 100})
        assert not self.scheme.r1_plus(a, b)

    def test_positive_weights_required(self):
        with pytest.raises(ValueError):
            WeightedConfig.of({1: 0})

    def test_mapping_and_iterable_coercion(self):
        assert self.scheme.is_quorum({1, 2}, {1: 1, 2: 1, 3: 1})
        assert self.scheme.is_quorum({1, 2}, frozenset({1, 2, 3}))


class TestStatic:
    scheme = StaticScheme()

    def test_reconfig_only_reflexive(self):
        a = frozenset({1, 2, 3})
        assert self.scheme.r1_plus(a, a)
        assert not self.scheme.r1_plus(a, frozenset({1, 2}))
