"""Property-based tests (hypothesis) for the scheme invariants.

Beyond the exhaustive bounded checks in ``test_assumptions``, these
sample larger universes and verify OVERLAP on randomly drawn quorum
pairs, plus structural properties of each scheme's quorum predicate.
"""

from hypothesis import given, settings, strategies as st

from repro.schemes import (
    DynamicQuorumScheme,
    JointConfig,
    JointConsensusScheme,
    PrimaryBackupConfig,
    PrimaryBackupScheme,
    RaftSingleNodeScheme,
    SizedConfig,
    UnanimousScheme,
    WeightedConfig,
    WeightedMajorityScheme,
)

nodes = st.integers(min_value=1, max_value=12)
node_sets = st.frozensets(nodes, min_size=1, max_size=8)


@st.composite
def single_node_transition(draw):
    conf = draw(node_sets)
    direction = draw(st.booleans())
    if direction or len(conf) == 1:
        extra = draw(nodes.filter(lambda n: n not in conf))
        return conf, conf | {extra}
    victim = draw(st.sampled_from(sorted(conf)))
    return conf, conf - {victim}


@settings(max_examples=200, deadline=None)
@given(single_node_transition(), st.data())
def test_single_node_overlap_property(transition, data):
    scheme = RaftSingleNodeScheme()
    old, new = transition
    assert scheme.r1_plus(old, new)
    q_old = draw_quorum(data, scheme, old)
    q_new = draw_quorum(data, scheme, new)
    assert q_old & q_new, (sorted(old), sorted(new), sorted(q_old), sorted(q_new))


def draw_quorum(data, scheme, conf):
    members = sorted(scheme.members(conf))
    while True:
        size = data.draw(
            st.integers(min_value=1, max_value=len(members)), label="qsize"
        )
        group = frozenset(
            data.draw(
                st.lists(
                    st.sampled_from(members),
                    min_size=size,
                    max_size=len(members),
                    unique=True,
                ),
                label="quorum",
            )
        )
        if scheme.is_quorum(group, conf):
            return group
        # Grow towards the full set, which is always a quorum for the
        # schemes under test.
        group = frozenset(members)
        assert scheme.is_quorum(group, conf)
        return group


@settings(max_examples=150, deadline=None)
@given(node_sets, node_sets, st.data())
def test_joint_consensus_overlap_property(old, new, data):
    scheme = JointConsensusScheme()
    stable = JointConfig.stable(old)
    joint = JointConfig.transition(old, new)
    landed = JointConfig.stable(new)
    assert scheme.r1_plus(stable, joint)
    assert scheme.r1_plus(joint, landed)
    # stable -> joint overlap.
    q1 = draw_quorum(data, scheme, stable)
    q2 = draw_quorum(data, scheme, joint)
    assert q1 & q2
    # joint -> landed overlap.
    q3 = draw_quorum(data, scheme, landed)
    assert q2 & q3


@settings(max_examples=150, deadline=None)
@given(nodes, node_sets, node_sets, st.data())
def test_primary_backup_overlap_property(primary, backups_a, backups_b, data):
    scheme = PrimaryBackupScheme()
    a = PrimaryBackupConfig.of(primary, backups_a)
    b = PrimaryBackupConfig.of(primary, backups_b)
    assert scheme.r1_plus(a, b)
    q_a = draw_quorum(data, scheme, a)
    q_b = draw_quorum(data, scheme, b)
    assert primary in q_a and primary in q_b


@settings(max_examples=150, deadline=None)
@given(node_sets, st.data())
def test_dynamic_quorum_growth_overlap(members, data):
    scheme = DynamicQuorumScheme()
    small = SizedConfig.majority(members)
    extras = frozenset(range(100, 100 + len(members)))
    grown_members = members | extras
    # Choose the smallest quorum size that both satisfies validity and
    # the R1+ bound.
    for q in range(1, len(grown_members) + 1):
        grown = SizedConfig.of(q, grown_members)
        if scheme.is_valid_config(grown) and scheme.r1_plus(small, grown):
            break
    else:
        return  # no legal one-step growth this large; nothing to test
    q_small = draw_quorum(data, scheme, small)
    q_grown = draw_quorum(data, scheme, grown)
    assert q_small & q_grown


@settings(max_examples=150, deadline=None)
@given(node_sets, node_sets, st.data())
def test_unanimous_overlap_property(a, b, data):
    scheme = UnanimousScheme()
    if not a & b:
        assert not scheme.r1_plus(a, b)
        return
    assert scheme.r1_plus(a, b)
    q_a = draw_quorum(data, scheme, a)
    q_b = draw_quorum(data, scheme, b)
    assert q_a & q_b


@settings(max_examples=150, deadline=None)
@given(
    st.dictionaries(nodes, st.integers(min_value=1, max_value=4),
                    min_size=1, max_size=6),
    nodes,
    st.integers(min_value=1, max_value=4),
    st.data(),
)
def test_weighted_overlap_property(weights, candidate, weight, data):
    scheme = WeightedMajorityScheme()
    old = WeightedConfig.of(weights)
    new_weights = dict(weights)
    if candidate in new_weights:
        if len(new_weights) == 1:
            return
        del new_weights[candidate]
    else:
        new_weights[candidate] = weight
    new = WeightedConfig.of(new_weights)
    if not scheme.r1_plus(old, new):
        return  # transition rejected; nothing to check
    q_old = draw_quorum(data, scheme, old)
    q_new = draw_quorum(data, scheme, new)
    assert q_old & q_new, (weights, new_weights, sorted(q_old), sorted(q_new))


@settings(max_examples=100, deadline=None)
@given(node_sets)
def test_quorum_monotonicity(conf):
    """Supersets of quorums are quorums (all bundled schemes)."""
    for scheme in (RaftSingleNodeScheme(), UnanimousScheme()):
        members = sorted(scheme.members(conf))
        full = frozenset(members)
        assert scheme.is_quorum(full, conf)
        assert scheme.is_quorum(full | {999}, conf)
