"""Generic, registry-driven property tests for the scheme protocol.

``test_scheme_properties`` hand-crafts transitions per scheme; these
tests instead drive *every* registered scheme through the same two
properties, using the bounded config universes the exhaustive checker
registers via ``register_config_generator``:

* any config pair related by ``R1⁺`` satisfies OVERLAP on randomly
  drawn quorum pairs (the proof's load-bearing assumption), and
* ``mbrs``/``isQuorum`` agree with the exhaustive checker's quorum
  enumeration: nodes outside ``mbrs`` never matter, so enumerating
  subsets of the member set (as ``check_assumptions`` does) covers
  every group.
"""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.schemes import (
    DynamicQuorumScheme,
    JointConsensusScheme,
    LoglessReconfigScheme,
    PrimaryBackupScheme,
    RaftSingleNodeScheme,
    RotatingPrimaryScheme,
    StaticScheme,
    UnanimousScheme,
    WeightedMajorityScheme,
    check_assumptions,
    configs_for,
)

ALL_SCHEMES = [
    RaftSingleNodeScheme(),
    JointConsensusScheme(),
    PrimaryBackupScheme(),
    RotatingPrimaryScheme(),
    DynamicQuorumScheme(),
    UnanimousScheme(),
    WeightedMajorityScheme(),
    LoglessReconfigScheme(),
    StaticScheme(),
]

UNIVERSE = [1, 2, 3]


def _subsets(members):
    ordered = sorted(members)
    for size in range(1, len(ordered) + 1):
        for combo in itertools.combinations(ordered, size):
            yield frozenset(combo)


@pytest.mark.parametrize("scheme", ALL_SCHEMES, ids=lambda s: s.name)
@settings(max_examples=120, deadline=None)
@given(data=st.data())
def test_r1_plus_pairs_satisfy_overlap(scheme, data):
    """Random R1⁺-related config pairs have intersecting quorums."""
    configs = configs_for(scheme, UNIVERSE)
    old = data.draw(st.sampled_from(configs), label="old")
    related = [new for new in configs if scheme.r1_plus(old, new)]
    assert related, "REFLEXIVE guarantees at least the identity transition"
    new = data.draw(st.sampled_from(related), label="new")
    q_old = data.draw(
        st.sampled_from(sorted(_subsets(scheme.members(old)), key=sorted)),
        label="q_old",
    )
    q_new = data.draw(
        st.sampled_from(sorted(_subsets(scheme.members(new)), key=sorted)),
        label="q_new",
    )
    if scheme.is_quorum(q_old, old) and scheme.is_quorum(q_new, new):
        assert q_old & q_new, (
            scheme.describe_config(old),
            scheme.describe_config(new),
            sorted(q_old),
            sorted(q_new),
        )


@pytest.mark.parametrize("scheme", ALL_SCHEMES, ids=lambda s: s.name)
@settings(max_examples=120, deadline=None)
@given(data=st.data())
def test_reflexive_on_registered_universe(scheme, data):
    conf = data.draw(st.sampled_from(configs_for(scheme, UNIVERSE)))
    assert scheme.r1_plus(conf, conf)


@pytest.mark.parametrize("scheme", ALL_SCHEMES, ids=lambda s: s.name)
@settings(max_examples=120, deadline=None)
@given(data=st.data())
def test_is_quorum_ignores_non_members(scheme, data):
    """``isQuorum`` depends only on the group's member intersection --
    the property that lets the exhaustive checker enumerate subsets of
    ``mbrs`` only."""
    conf = data.draw(st.sampled_from(configs_for(scheme, UNIVERSE)))
    members = scheme.members(conf)
    outsiders = data.draw(
        st.frozensets(
            st.integers(min_value=90, max_value=99), min_size=0, max_size=3
        )
    )
    group = data.draw(
        st.frozensets(st.sampled_from(sorted(members) + [77]), min_size=0)
        if members
        else st.just(frozenset())
    )
    assert scheme.is_quorum(group | outsiders, conf) == scheme.is_quorum(
        group & members, conf
    )


@pytest.mark.parametrize("scheme", ALL_SCHEMES, ids=lambda s: s.name)
def test_quorum_enumeration_agrees_with_checker(scheme):
    """Brute force over *all* groups (members plus outsiders) agrees
    with the checker's subset-of-members enumeration, and the checker's
    verdict matches a direct exhaustive OVERLAP check."""
    report = check_assumptions(scheme, UNIVERSE)
    assert report.ok, report.summary()
    for conf in configs_for(scheme, UNIVERSE):
        members = scheme.members(conf)
        checker_quorums = {
            group for group in _subsets(members)
            if scheme.is_quorum(group, conf)
        }
        for group in _subsets(set(UNIVERSE) | {42}):
            assert scheme.is_quorum(group, conf) == (
                (group & members) in checker_quorums
            ), (scheme.describe_config(conf), sorted(group))
