"""Exhaustive REFLEXIVE/OVERLAP checks over bounded universes -- the
executable analogue of the paper's per-scheme Coq side conditions."""

import pytest

from repro.schemes import (
    DynamicQuorumScheme,
    JointConsensusScheme,
    LoglessReconfigScheme,
    PrimaryBackupScheme,
    RaftSingleNodeScheme,
    RotatingPrimaryScheme,
    StaticScheme,
    UnanimousScheme,
    UnsafeMultiNodeScheme,
    WeightedMajorityScheme,
    check_all_schemes,
    check_assumptions,
    configs_for,
)

SAFE_SCHEMES = [
    RaftSingleNodeScheme(),
    JointConsensusScheme(),
    PrimaryBackupScheme(),
    RotatingPrimaryScheme(),
    DynamicQuorumScheme(),
    UnanimousScheme(),
    WeightedMajorityScheme(),
    LoglessReconfigScheme(),
    StaticScheme(),
]


@pytest.mark.parametrize("scheme", SAFE_SCHEMES, ids=lambda s: s.name)
def test_assumptions_hold_over_three_nodes(scheme):
    report = check_assumptions(scheme, [1, 2, 3])
    assert report.ok, report.summary() + "\n" + "\n".join(
        report.reflexive_violations + report.overlap_violations
    )
    assert report.configs_checked > 0
    assert report.quorum_pairs_checked > 0


@pytest.mark.parametrize(
    "scheme",
    [RaftSingleNodeScheme(), PrimaryBackupScheme(), UnanimousScheme(),
     DynamicQuorumScheme(), LoglessReconfigScheme()],
    ids=lambda s: s.name,
)
def test_assumptions_hold_over_four_nodes(scheme):
    report = check_assumptions(scheme, [1, 2, 3, 4])
    assert report.ok, report.summary()


def test_unsafe_scheme_violates_overlap():
    report = check_assumptions(UnsafeMultiNodeScheme(), [1, 2, 3, 4],
                               stop_at_first=True)
    assert not report.ok
    assert report.overlap_violations


def test_config_universe_sizes():
    assert len(configs_for(RaftSingleNodeScheme(), [1, 2, 3])) == 7
    # Joint: 7 stable + 49 joint.
    assert len(configs_for(JointConsensusScheme(), [1, 2, 3])) == 56
    # Primary-backup: 3 primaries x 4 backup subsets.
    assert len(configs_for(PrimaryBackupScheme(), [1, 2, 3])) == 12


def test_configs_for_unknown_scheme_raises():
    from repro.core import ReconfigScheme

    class Exotic(ReconfigScheme):
        name = "exotic"

        def members(self, conf):
            return frozenset(conf)

        def is_quorum(self, group, conf):
            return True

        def r1_plus(self, old, new):
            return True

    with pytest.raises(KeyError):
        configs_for(Exotic(), [1, 2])


def test_report_summary_format():
    report = check_assumptions(RaftSingleNodeScheme(), [1, 2, 3])
    assert "raft-single-node" in report.summary()
    assert "OK" in report.summary()


def test_check_all_schemes_returns_one_report_each():
    reports = check_all_schemes([1, 2, 3])
    assert len(reports) == 9
    assert all(r.ok for r in reports)


def test_overlap_witness_carries_configs_and_disjoint_quorums():
    report = check_assumptions(UnsafeMultiNodeScheme(), [1, 2, 3, 4],
                               stop_at_first=True)
    assert report.overlap_witnesses
    witness = report.overlap_witnesses[0]
    scheme = UnsafeMultiNodeScheme()
    # The witness is concrete and re-checkable.
    assert scheme.r1_plus(witness.old_config, witness.new_config)
    assert scheme.is_quorum(frozenset(witness.quorum_old), witness.old_config)
    assert scheme.is_quorum(frozenset(witness.quorum_new), witness.new_config)
    assert not (set(witness.quorum_old) & set(witness.quorum_new))
    assert witness.describe() == report.overlap_violations[0]
    assert "disjoint quorums" in witness.describe()


def test_reflexive_witness_carries_config():
    class NeverReflexive(RaftSingleNodeScheme):
        name = "never-reflexive"

        def r1_plus(self, old, new):
            return False

    report = check_assumptions(NeverReflexive(), [1, 2], stop_at_first=True)
    assert not report.ok
    assert report.reflexive_witnesses
    witness = report.reflexive_witnesses[0]
    assert witness.config in set(configs_for(NeverReflexive(), [1, 2]))
    assert witness.describe() == report.reflexive_violations[0]
