"""Property-based tests for the ADO model's event-sourced semantics."""

from hypothesis import given, settings, strategies as st

from repro.ado import AdoMachine, RandomAdoOracle, interp_all, is_le

NODES = [1, 2, 3]


def random_machine(data, steps=20):
    seed = data.draw(st.integers(0, 10_000), label="seed")
    fail_prob = data.draw(
        st.sampled_from([0.0, 0.2, 0.5]), label="fail_prob"
    )
    machine = AdoMachine(RandomAdoOracle(seed=seed, fail_prob=fail_prob))
    for step in range(steps):
        nid = data.draw(st.sampled_from(NODES), label=f"nid{step}")
        op = data.draw(
            st.sampled_from(["pull", "invoke", "push"]), label=f"op{step}"
        )
        if op == "pull":
            machine.pull(nid)
        elif op == "invoke":
            machine.invoke(nid, f"m{step}")
        else:
            machine.push(nid)
    return machine


@settings(max_examples=80, deadline=None)
@given(st.data())
def test_persistent_log_is_append_only(data):
    seed = data.draw(st.integers(0, 10_000), label="seed")
    machine = AdoMachine(RandomAdoOracle(seed=seed, fail_prob=0.2))
    previous = ()
    for step in range(25):
        nid = data.draw(st.sampled_from(NODES), label=f"nid{step}")
        op = data.draw(
            st.sampled_from(["pull", "invoke", "push"]), label=f"op{step}"
        )
        if op == "invoke":
            machine.invoke(nid, f"m{step}")
        else:
            getattr(machine, op)(nid)
        current = machine.state.persist
        assert current[: len(previous)] == previous
        previous = current


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_event_log_replay_is_deterministic(data):
    machine = random_machine(data)
    assert interp_all(machine.events) == machine.state


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_persistent_log_forms_a_chain(data):
    machine = random_machine(data)
    persist = machine.state.persist
    for earlier, later in zip(persist, persist[1:]):
        assert is_le(earlier.cid, later.cid)


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_owner_map_never_unburns_timestamps(data):
    seed = data.draw(st.integers(0, 10_000), label="seed")
    machine = AdoMachine(RandomAdoOracle(seed=seed, fail_prob=0.1))
    claimed = {}
    for step in range(25):
        nid = data.draw(st.sampled_from(NODES), label=f"nid{step}")
        op = data.draw(
            st.sampled_from(["pull", "invoke", "push"]), label=f"op{step}"
        )
        if op == "invoke":
            machine.invoke(nid, f"m{step}")
        else:
            getattr(machine, op)(nid)
        for time, owner in machine.state.owners.items():
            if time in claimed:
                # An owned or burnt timestamp never changes hands.
                assert claimed[time] == owner, (time, claimed[time], owner)
            claimed[time] = owner


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_live_caches_descend_from_committed_root(data):
    machine = random_machine(data)
    state = machine.state
    root = state.root()
    if not state.persist:
        return  # nothing committed yet: any shape is fine
    # Every live cache strictly extends the committed frontier --
    # partition() pruned the stale siblings at commit time.
    for cache in state.caches:
        assert is_le(root, cache.cid), (root, cache.cid)
