"""Cross-model scenarios: the ADO model (Appendix D) and Adore agree on
committed method sequences when driven by corresponding schedules.

Adore is the ADO "opened up": it drops the separate persistent log and
keeps commit metadata in the tree.  For any schedule expressible in
both models, the ADO's persistent log must equal Adore's committed
method sequence.
"""

from repro.ado import AdoMachine, CID, PullOkAdo, PushOkAdo, ROOT, ScriptedAdoOracle, next_cid
from repro.core import (
    AdoreMachine,
    PullOk,
    PushOk,
    ScriptedOracle,
    committed_methods,
)
from repro.schemes import RaftSingleNodeScheme

NODES = frozenset({1, 2, 3})
SCHEME = RaftSingleNodeScheme()
F = frozenset


def adore_machine(outcomes):
    return AdoreMachine.create(NODES, SCHEME, ScriptedOracle(outcomes))


class TestCommittedLogCorrespondence:
    def test_single_leader_full_commit(self):
        ado = AdoMachine(ScriptedAdoOracle([
            PullOkAdo(time=1, cid=ROOT),
            PushOkAdo(cid=next_cid(CID(1, 1, ROOT))),  # commit both
        ]))
        ado.pull(1)
        ado.invoke(1, "m1")
        ado.invoke(1, "m2")
        ado.push(1)

        adore = adore_machine([
            PullOk(group=F({1, 2}), time=1),
            PushOk(group=F({1, 2}), target=3),  # M2's cid
        ])
        adore.pull(1)
        adore.invoke(1, "m1")
        adore.invoke(1, "m2")
        adore.push(1)

        assert ado.persistent_methods() == ["m1", "m2"]
        assert committed_methods(adore.state.tree) == ["m1", "m2"]

    def test_partial_commit_prefix(self):
        # Both models commit only the first of two methods; the second
        # remains a viable uncommitted continuation.
        first = CID(1, 1, ROOT)
        ado = AdoMachine(ScriptedAdoOracle([
            PullOkAdo(time=1, cid=ROOT),
            PushOkAdo(cid=first),
        ]))
        ado.pull(1)
        ado.invoke(1, "m1")
        ado.invoke(1, "m2")
        ado.push(1)

        adore = adore_machine([
            PullOk(group=F({1, 2}), time=1),
            PushOk(group=F({1, 2}), target=2),  # M1's cid
        ])
        adore.pull(1)
        adore.invoke(1, "m1")
        adore.invoke(1, "m2")
        adore.push(1)

        assert ado.persistent_methods() == ["m1"]
        assert committed_methods(adore.state.tree) == ["m1"]
        # The uncommitted m2 is still present in both.
        assert {c.method for c in ado.state.caches} == {"m2"}
        live = [
            adore.state.tree.cache(c).method
            for c in adore.state.tree.cids()
            if adore.state.tree.cache(c).kind == "M"
            and not any(
                adore.state.tree.cache(d).kind == "C"
                for d in adore.state.tree.descendants(c)
            )
        ]
        assert live == ["m2"]

    def test_leader_change_drops_or_strands_junk(self):
        # Leader 1 leaves an uncommitted method; leader 2 commits its
        # own.  ADO deletes the stale branch at commit time; Adore
        # strands it (append-only) -- committed sequences still agree.
        junk_cid = CID(1, 1, ROOT)
        ado = AdoMachine(ScriptedAdoOracle([
            PullOkAdo(time=1, cid=ROOT),
            PullOkAdo(time=2, cid=ROOT),
            PushOkAdo(cid=CID(2, 2, ROOT)),
        ]))
        ado.pull(1)
        ado.invoke(1, "junk")
        ado.pull(2)
        ado.invoke(2, "good")
        ado.push(2)

        adore = adore_machine([
            PullOk(group=F({1, 2}), time=1),
            PullOk(group=F({2, 3}), time=2),
            PushOk(group=F({2, 3}), target=4),
        ])
        adore.pull(1)
        adore.invoke(1, "junk")   # cid 2 under E1
        adore.pull(2)             # E2 forks at root (2, 3 observed nothing)
        adore.invoke(2, "good")   # cid 4
        adore.push(2)

        assert ado.persistent_methods() == ["good"]
        assert committed_methods(adore.state.tree) == ["good"]
        # ADO physically deleted the junk; Adore stranded it.
        assert all(c.method != "junk" for c in ado.state.caches)
        stranded = [
            adore.state.tree.cache(c).method
            for c in adore.state.tree.cids()
            if adore.state.tree.cache(c).kind == "M"
        ]
        assert "junk" in stranded

    def test_preempted_leader_cannot_commit_in_either_model(self):
        from repro.core.errors import InvalidOracleOutcome

        import pytest

        # ADO: maxOwner has moved on.
        ado = AdoMachine(ScriptedAdoOracle([
            PullOkAdo(time=1, cid=ROOT),
            PullOkAdo(time=2, cid=ROOT),
            PushOkAdo(cid=CID(1, 1, ROOT)),
        ]))
        ado.pull(1)
        ado.invoke(1, "m")
        ado.pull(2)
        with pytest.raises(InvalidOracleOutcome):
            ado.push(1)

        # Adore: the supporters' times exceed the target's.
        adore = adore_machine([
            PullOk(group=F({1, 2}), time=1),
            PullOk(group=F({1, 2, 3}), time=2),
            PushOk(group=F({1, 2}), target=2),
        ])
        adore.pull(1)
        adore.invoke(1, "m")
        adore.pull(2)
        with pytest.raises(InvalidOracleOutcome):
            adore.push(1)
