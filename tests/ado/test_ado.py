"""Unit tests for the ADO model (Appendix D.1)."""

import pytest

from repro.ado import (
    ADO_FAIL,
    AdoCache,
    AdoMachine,
    CID,
    InvokeMinus,
    InvokePlus,
    NO_OWN,
    PullMinus,
    PullOkAdo,
    PullPlus,
    PullPreempt,
    PullStar,
    PushMinus,
    PushOkAdo,
    PushPlus,
    ROOT,
    RandomAdoOracle,
    ScriptedAdoOracle,
    ancestors,
    depth,
    initial_state,
    interp,
    interp_all,
    is_le,
    is_lt,
    next_cid,
    partition,
    position_valid,
    vote_no_own,
)
from repro.core.errors import InvalidOracleOutcome


class TestCid:
    def test_next_cid_extends_chain(self):
        first = CID(1, 1, ROOT)
        second = next_cid(first)
        assert second == CID(1, 1, first)
        assert second.parent == first

    def test_ancestors_walk_to_root(self):
        a = CID(1, 1, ROOT)
        b = next_cid(a)
        assert list(ancestors(b)) == [a, ROOT]

    def test_order_is_proper_ancestry(self):
        a = CID(1, 1, ROOT)
        b = next_cid(a)
        assert is_lt(a, b)
        assert is_lt(ROOT, b)
        assert not is_lt(b, a)
        assert not is_lt(a, a)
        assert is_le(a, a)

    def test_depth(self):
        a = CID(1, 1, ROOT)
        assert depth(ROOT) == 0
        assert depth(a) == 1
        assert depth(next_cid(a)) == 2


class TestOwnerMap:
    def test_vote_no_own_burns_unclaimed_slots(self):
        state = initial_state()
        owners = vote_no_own(state.owners.set(3, 7), 2)
        assert owners.get(1) == NO_OWN
        assert owners.get(2) == NO_OWN
        assert owners.get(3) == 7

    def test_no_owner_at(self):
        state = initial_state()
        assert state.no_owner_at(5)
        state = interp(PullPlus(1, 5, ROOT), state)
        assert not state.no_owner_at(5)


class TestPartition:
    def test_partition_splits_at_ccid(self):
        a = CID(1, 1, ROOT)
        b = next_cid(a)
        c = next_cid(b)
        caches = {AdoCache(a, "m1"), AdoCache(b, "m2"), AdoCache(c, "m3")}
        committed, survivors = partition(caches, b)
        assert [cache.method for cache in committed] == ["m1", "m2"]
        assert {cache.method for cache in survivors} == {"m3"}

    def test_partition_discards_siblings(self):
        a = CID(1, 1, ROOT)
        sibling = CID(2, 2, ROOT)
        caches = {AdoCache(a, "m1"), AdoCache(sibling, "other")}
        committed, survivors = partition(caches, a)
        assert [c.method for c in committed] == ["m1"]
        assert survivors == frozenset()


class TestInterp:
    def test_pull_plus_sets_cid_and_owner(self):
        state = interp(PullPlus(1, 3, ROOT), initial_state())
        assert state.active_cid(1) == CID(1, 3, ROOT)
        assert state.owners.get(3) == 1
        # Earlier timestamps are burnt.
        assert state.owners.get(2) == NO_OWN

    def test_pull_star_burns_through_time(self):
        state = interp(PullStar(1, 2), initial_state())
        assert state.owners.get(2) == NO_OWN
        assert state.owners.get(1) == NO_OWN

    def test_failures_are_noops(self):
        state = initial_state()
        for event in (PullMinus(1), InvokeMinus(1), PushMinus(1)):
            assert interp(event, state) == state

    def test_invoke_adds_cache_and_advances_cid(self):
        state = interp(PullPlus(1, 1, ROOT), initial_state())
        state = interp(InvokePlus(1, "m"), state)
        cache_cid = CID(1, 1, ROOT)
        assert AdoCache(cache_cid, "m") in state.caches
        assert state.active_cid(1) == next_cid(cache_cid)

    def test_push_moves_prefix_to_persist(self):
        state = interp(PullPlus(1, 1, ROOT), initial_state())
        state = interp(InvokePlus(1, "m1"), state)
        state = interp(InvokePlus(1, "m2"), state)
        first = CID(1, 1, ROOT)
        state = interp(PushPlus(1, first), state)
        assert [c.method for c in state.persist] == ["m1"]
        assert {c.method for c in state.caches} == {"m2"}
        assert state.root() == first

    def test_interp_all_folds(self):
        events = [
            PullPlus(1, 1, ROOT),
            InvokePlus(1, "m1"),
            PushPlus(1, CID(1, 1, ROOT)),
        ]
        state = interp_all(events)
        assert [c.method for c in state.persist] == ["m1"]


class TestPositionValidity:
    def test_position_invalid_after_sibling_commit(self):
        # Client 2 forks from Root; client 1 commits; 2's position dies.
        state = interp(PullPlus(1, 1, ROOT), initial_state())
        state = interp(InvokePlus(1, "m1"), state)
        state = interp(PullStar(2, 2), state)  # burnt, then 2 pulls at 3
        state = interp(PullPlus(2, 3, ROOT), state)
        state = interp(PushPlus(1, CID(1, 1, ROOT)), state)
        assert not position_valid(state, state.active_cid(2))

    def test_position_valid_on_committed_frontier(self):
        state = interp(PullPlus(1, 1, ROOT), initial_state())
        state = interp(InvokePlus(1, "m1"), state)
        first = CID(1, 1, ROOT)
        state = interp(PushPlus(1, first), state)
        state = interp(PullPlus(1, 2, first), state)
        assert position_valid(state, state.active_cid(1))


class TestOracles:
    def test_scripted_validates_pull_time(self):
        oracle = ScriptedAdoOracle([PullOkAdo(time=1, cid=CID(1, 5, ROOT))])
        machine = AdoMachine(oracle)
        with pytest.raises(InvalidOracleOutcome):
            machine.pull(1)

    def test_scripted_rejects_owned_time(self):
        oracle = ScriptedAdoOracle([
            PullOkAdo(time=1, cid=ROOT),
            PullOkAdo(time=1, cid=ROOT),
        ])
        machine = AdoMachine(oracle)
        machine.pull(1)
        with pytest.raises(InvalidOracleOutcome):
            machine.pull(2)

    def test_scripted_rejects_push_after_preemption(self):
        oracle = ScriptedAdoOracle([
            PullOkAdo(time=1, cid=ROOT),
            PullPreempt(time=2),
            PushOkAdo(cid=CID(1, 1, ROOT)),
        ])
        machine = AdoMachine(oracle)
        machine.pull(1)
        machine.invoke(1, "m")
        machine.pull(2)
        # maxOwner is now NoOwn at time 2, so node 1 cannot push.
        with pytest.raises(InvalidOracleOutcome):
            machine.push(1)

    def test_random_oracle_produces_valid_runs(self):
        machine = AdoMachine(RandomAdoOracle(seed=3, fail_prob=0.2))
        for step in range(40):
            nid = (step % 3) + 1
            machine.pull(nid)
            machine.invoke(nid, f"m{step}")
            machine.push(nid)
        # Replay from the event log reproduces the state (determinism).
        assert machine.replay() == machine.state


class TestMachine:
    def test_basic_commit_flow(self):
        oracle = ScriptedAdoOracle([
            PullOkAdo(time=1, cid=ROOT),
            PushOkAdo(cid=CID(1, 1, ROOT)),
        ])
        machine = AdoMachine(oracle)
        machine.pull(1)
        machine.invoke(1, "M1")
        machine.invoke(1, "M2")
        machine.push(1)
        assert machine.persistent_methods() == ["M1"]
        assert len(machine.state.caches) == 1

    def test_invoke_without_pull_fails(self):
        machine = AdoMachine(ScriptedAdoOracle([]))
        event = machine.invoke(1, "m")
        assert isinstance(event, InvokeMinus)

    def test_fail_outcomes_are_noop_events(self):
        machine = AdoMachine(ScriptedAdoOracle([ADO_FAIL, ADO_FAIL]))
        assert isinstance(machine.pull(1), PullMinus)
        assert isinstance(machine.push(1), PushMinus)
