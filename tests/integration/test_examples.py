"""Smoke tests: every shipped example runs to completion.

Each example is a narrative deliverable; these tests execute their
``main()`` with stdout captured so a regression anywhere in the public
API surfaces as an example failure, not just a unit failure.
"""

import importlib.util
import io
import os
from contextlib import redirect_stdout

import pytest

EXAMPLES_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "examples",
)

FAST_EXAMPLES = [
    "quickstart",
    "kvstore_cluster",
    "scheme_zoo",
    "failover_replacement",
    "paxos_vs_raft",
    "chaos",
    "trace_view",
    "net_cluster",
]

SLOW_EXAMPLES = [
    "raft_reconfig_bug",
    "model_check_safety",
    "differential",
]


def load_example(name):
    path = os.path.join(EXAMPLES_DIR, f"{name}.py")
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_fast_example_runs(name):
    module = load_example(name)
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        module.main()
    output = buffer.getvalue()
    assert len(output) > 100  # it narrated something


@pytest.mark.parametrize("name", SLOW_EXAMPLES)
def test_slow_example_runs(name):
    if os.environ.get("REPRO_SKIP_SLOW") == "1":
        pytest.skip("REPRO_SKIP_SLOW=1")
    module = load_example(name)
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        if name == "model_check_safety":
            module.main(full=False)
        elif name == "differential":
            # Two schemes on the smoke budgets keeps it in CI time; the
            # full seven-scheme matrix runs in the dedicated CI job.
            assert module.main(
                schemes=["raft-single-node", "mongo-logless"]
            ) == 0
        else:
            module.main()
    output = buffer.getvalue()
    assert "VIOLATION" in output or "violations" in output


def test_examples_directory_complete():
    files = {
        f[:-3] for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py")
    }
    assert files == set(FAST_EXAMPLES) | set(SLOW_EXAMPLES)
