"""Integration tests spanning multiple subsystems."""

import pytest

from repro.core import (
    AdoreMachine,
    RandomOracle,
    check_state,
    committed_methods,
)
from repro.mc import Explorer, OpBudget
from repro.refinement import SimulationChecker, normalize, atomic_groups, check_equivalent
from repro.raft import Deliver, RaftSystem
from repro.runtime import ReplicatedKV
from repro.schemes import (
    DynamicQuorumScheme,
    JointConfig,
    JointConsensusScheme,
    PrimaryBackupConfig,
    PrimaryBackupScheme,
    RaftSingleNodeScheme,
    SizedConfig,
    UnanimousScheme,
    WeightedConfig,
    WeightedMajorityScheme,
)


class TestAdoreAcrossSchemes:
    """The same Adore machine runs unchanged under every scheme
    (Section 6: the model is generic in Config/isQuorum/R1⁺)."""

    def run_machine(self, conf0, scheme, reconfig_to, seed=0):
        machine = AdoreMachine.create(
            conf0, scheme, RandomOracle(seed=seed, fail_prob=0.0, quorums_only=True)
        )
        leader = sorted(scheme.members(conf0))[0]
        assert machine.pull(leader).ok
        assert machine.invoke(leader, "m1").ok
        assert machine.push(leader).ok
        result = machine.reconfig(leader, reconfig_to)
        assert result.ok, result.reason
        assert machine.push(leader).ok
        report = check_state(machine.state)
        assert report.ok, report.all_violations()
        return machine

    def test_single_node(self):
        machine = self.run_machine(
            frozenset({1, 2, 3}), RaftSingleNodeScheme(), frozenset({1, 2})
        )
        assert committed_methods(machine.state.tree) == ["m1", frozenset({1, 2})]

    def test_joint_consensus(self):
        scheme = JointConsensusScheme()
        self.run_machine(
            JointConfig.stable({1, 2, 3}),
            scheme,
            JointConfig.transition({1, 2, 3}, {2, 3, 4}),
        )

    def test_primary_backup(self):
        self.run_machine(
            PrimaryBackupConfig.of(1, {2, 3}),
            PrimaryBackupScheme(),
            PrimaryBackupConfig.of(1, {4, 5, 6, 7}),
        )

    def test_dynamic_quorum(self):
        self.run_machine(
            SizedConfig.of(2, {1, 2, 3}),
            DynamicQuorumScheme(),
            SizedConfig.of(4, {1, 2, 3, 4, 5}),
        )

    def test_unanimous(self):
        # Wholesale change in one step: only one member carries over.
        # (The carried-over member must include the leader, since the
        # leader must belong to the quorum that commits the RCache.)
        self.run_machine(
            frozenset({1, 2, 3}),
            UnanimousScheme(),
            frozenset({1, 4, 5}),
        )

    def test_weighted(self):
        self.run_machine(
            WeightedConfig.of({1: 2, 2: 1, 3: 1}),
            WeightedMajorityScheme(),
            WeightedConfig.of({1: 2, 2: 1, 3: 1, 4: 1}),
        )


class TestModelCheckerAcrossSchemes:
    """Bounded exhaustive safety for non-default schemes."""

    @pytest.mark.parametrize(
        "scheme, conf0, moves",
        [
            (
                PrimaryBackupScheme(),
                PrimaryBackupConfig.of(1, {2, 3}),
                lambda s, n, c: [
                    PrimaryBackupConfig.of(1, {2}),
                    PrimaryBackupConfig.of(1, {2, 3, 4}),
                ],
            ),
            (
                UnanimousScheme(),
                frozenset({1, 2}),
                lambda s, n, c: [frozenset({2, 3}), frozenset({1, 2, 3})],
            ),
        ],
        ids=["primary-backup", "unanimous"],
    )
    def test_bounded_safety(self, scheme, conf0, moves):
        explorer = Explorer(
            scheme,
            conf0,
            budget=OpBudget(pulls=1, invokes=1, reconfigs=1, pushes=2),
            reconfig_candidates=moves,
            max_states=100_000,
        )
        result = explorer.run()
        assert result.safe, result.violations[0].describe()
        assert result.states_visited > 1


class TestTraceToSimulationPipeline:
    """Async Raft trace -> normalized SRaft rounds -> Adore simulation:
    the full Theorem C.11 pipeline on a concrete run."""

    def test_pipeline(self):
        conf = frozenset({1, 2, 3})
        scheme = RaftSingleNodeScheme()
        system = RaftSystem(conf, scheme)
        system.elect(1)
        system.deliver_all()
        system.invoke(1, "a")
        system.commit(1)
        system.deliver_all()
        system.elect(2)
        system.deliver_all()
        system.invoke(2, "b")
        system.commit(2)
        system.deliver_all()

        trace = system.trace
        normalized = normalize(conf, scheme, trace)
        assert check_equivalent(conf, scheme, trace, normalized) == []

        groups = atomic_groups(normalized)
        sim = SimulationChecker(conf, scheme)
        from repro.raft import Commit, Elect, ElectReq, CommitReq, Invoke

        for group in groups:
            head = group[0]
            if isinstance(head, Elect):
                continue  # the request send; handled with its round
            if isinstance(head, Invoke):
                sim.invoke(head.nid, head.method)
            elif isinstance(head, Commit):
                continue
            elif isinstance(head, Deliver):
                receivers = sorted(
                    {
                        e.msg.to
                        for e in group
                        if isinstance(e.msg, (ElectReq, CommitReq))
                    }
                )
                if isinstance(head.msg, (ElectReq,)) or (
                    hasattr(head.msg, "granted")
                ):
                    sim.elect(
                        head.msg.frm
                        if isinstance(head.msg, ElectReq)
                        else head.msg.to,
                        receivers,
                    )
                else:
                    leader = (
                        head.msg.frm
                        if isinstance(head.msg, CommitReq)
                        else head.msg.to
                    )
                    sim.commit(leader, receivers)
        assert sim.ok, sim.report()
        # The simulated Adore state commits the same methods.
        assert committed_methods(sim.adore.tree) == ["a", "b"]


class TestKVStoreAgainstModel:
    """The executable KV store's committed history satisfies the model's
    safety property at every step."""

    def test_kv_history_linearizes(self):
        kv = ReplicatedKV(frozenset({1, 2, 3}), RaftSingleNodeScheme(), seed=9)
        kv.put("a", 1)
        kv.put("b", 2)
        kv.reconfigure(frozenset({1, 2}))
        kv.put("c", 3)
        kv.sync()
        assert kv.cluster.check_safety() == []
        assert kv.snapshot() == {"a": 1, "b": 2, "c": 3}
        # Every follower's view is a prefix of the leader's history.
        for nid in (1, 2):
            view = kv.snapshot_at(nid)
            assert all(kv.snapshot().get(k) == v for k, v in view.items())
