"""Tests for the differential model-checking harness.

The two contractual properties (ISSUE acceptance criteria):

* determinism -- the same budgets produce the identical report (state
  counts, frontiers, survival matrix) on repeat runs;
* separation -- on the Fig. 4 budget the ``no-r3`` ablation kills Raft
  single-node while the MongoDB logless scheme (whose Q1/Q2 enabling
  conditions subsume R2/R3) stays SAFE.
"""

import json

import pytest

from repro.mc import FIG4_BUDGET, OpBudget
from repro.mc.differential import (
    ABLATIONS,
    DEFAULT_BUDGETS,
    SMOKE_BUDGETS,
    OverlapAblation,
    default_scenarios,
    explorer_for,
    run_differential,
)
from repro.schemes import LoglessConfig, RaftSingleNodeScheme

TINY_BUDGETS = {
    "intact": OpBudget(pulls=1, invokes=1, reconfigs=1, pushes=1),
    "no-r2": OpBudget(pulls=1, invokes=1, reconfigs=1, pushes=1),
    "no-r3": OpBudget(pulls=1, invokes=1, reconfigs=1, pushes=1),
    "no-overlap": OpBudget(pulls=1, invokes=1, reconfigs=1, pushes=1),
    "leaf-commit": OpBudget(pulls=1, invokes=2, reconfigs=0, pushes=2),
}


def _scenarios(*names):
    by_name = {s.name: s for s in default_scenarios()}
    return [by_name[name] for name in names]


def test_default_scenarios_cover_the_seven_schemes():
    names = [s.name for s in default_scenarios()]
    assert names == [
        "raft-single-node",
        "raft-joint-consensus",
        "primary-backup",
        "dynamic-quorum",
        "unanimous",
        "weighted-majority",
        "mongo-logless",
    ]


def test_budget_tables_cover_every_ablation():
    assert set(DEFAULT_BUDGETS) == set(ABLATIONS)
    assert set(SMOKE_BUDGETS) == set(ABLATIONS)


def test_report_is_deterministic_across_runs():
    scenarios = _scenarios("raft-single-node", "mongo-logless")
    first = run_differential(
        scenarios=scenarios, budgets=TINY_BUDGETS, max_states=20_000
    )
    second = run_differential(
        scenarios=scenarios, budgets=TINY_BUDGETS, max_states=20_000
    )
    assert first.determinism_key() == second.determinism_key()
    # Timings aside, the serialized reports agree too.
    strip = lambda d: json.loads(
        json.dumps(d, sort_keys=True, default=str).replace(" ", "")
    )
    a, b = first.to_dict(), second.to_dict()
    for report in (a, b):
        for record in report["records"]:
            record.pop("elapsed_seconds")
    assert strip(a) == strip(b)


def test_no_r3_separates_logless_from_raft_on_fig4_budget():
    """The acceptance-criterion separation: same budget, same ablation,
    opposite fates -- the logless protocol's own Q2 gate replaces R3."""
    scenarios = _scenarios("raft-single-node", "mongo-logless")
    report = run_differential(
        scenarios=scenarios,
        budgets=DEFAULT_BUDGETS,
        ablations=("no-r3",),
        max_states=100_000,
    )
    raft = report.record("raft-single-node", "no-r3")
    logless = report.record("mongo-logless", "no-r3")
    assert not raft.safe
    assert raft.first_violation_depth == 8  # the Fig. 4 counterexample
    assert "safety" in raft.first_violation_labels
    assert logless.safe
    assert logless.complete  # full schedule class, not a truncation
    assert "no-r3" in report.separations("raft-single-node", "mongo-logless")


def test_overlap_ablation_delegates_but_drops_r1():
    base = RaftSingleNodeScheme()
    ablated = OverlapAblation(base)
    assert ablated.name == "raft-single-node+no-overlap"
    old, new = frozenset({1, 2, 3}), frozenset({4, 5, 6})
    assert not base.r1_plus(old, new)
    assert ablated.r1_plus(old, new)  # any valid config is accepted
    assert not ablated.r1_plus(old, frozenset())  # but not an invalid one
    assert ablated.members(old) == base.members(old)
    assert ablated.is_quorum({1, 2}, old) == base.is_quorum({1, 2}, old)
    assert ablated.describe_config(old) == base.describe_config(old)


def test_explorer_for_configures_each_ablation():
    scenario = _scenarios("mongo-logless")[0]
    intact = explorer_for(scenario, "intact", max_states=10)
    assert intact.enforce_r2 and intact.enforce_r3
    assert intact.budget == FIG4_BUDGET
    no_r2 = explorer_for(scenario, "no-r2", max_states=10)
    assert not no_r2.enforce_r2 and no_r2.enforce_r3
    no_r3 = explorer_for(scenario, "no-r3", max_states=10)
    assert no_r3.enforce_r2 and not no_r3.enforce_r3
    no_overlap = explorer_for(scenario, "no-overlap", max_states=10)
    assert isinstance(no_overlap.scheme, OverlapAblation)
    leaf = explorer_for(scenario, "leaf-commit", max_states=10)
    assert leaf.push_step is not intact.push_step
    with pytest.raises(ValueError):
        explorer_for(scenario, "no-such-ablation")


def test_report_structure_and_rendering():
    scenarios = _scenarios("raft-single-node")
    report = run_differential(
        scenarios=scenarios,
        budgets=TINY_BUDGETS,
        ablations=("intact", "leaf-commit"),
        max_states=20_000,
    )
    assert report.schemes() == ["raft-single-node"]
    assert report.ablations() == ["intact", "leaf-commit"]
    matrix = report.survival_matrix()
    assert matrix[0][0] == "raft-single-node"
    assert matrix[0][1] == "survives"
    assert matrix[0][2].startswith("dies@")
    leaf = report.record("raft-single-node", "leaf-commit")
    assert not leaf.safe and leaf.first_violation_depth is not None
    payload = json.loads(report.to_json())
    assert payload["survival_matrix"] == matrix
    assert payload["budgets"]["intact"]["pulls"] == 1
    rendered = report.render()
    assert "ablation survival" in rendered
    assert "violation frontier" in rendered
    assert "raft-single-node" in rendered
    # Unknown ablation names are rejected up front.
    with pytest.raises(ValueError):
        run_differential(
            scenarios=scenarios, ablations=("bogus",), max_states=10
        )


def test_logless_intact_verified_on_fig4_budget():
    """Acceptance criterion: the bounded checker certifies the logless
    scheme intact on the Fig. 4 budget (exhaustive bfs, same bound as
    the Raft hunt)."""
    scenario = _scenarios("mongo-logless")[0]
    explorer = explorer_for(
        scenario, "intact", max_states=100_000, strategy="bfs"
    )
    result = explorer.run()
    assert result.safe
    assert result.exhausted
    assert result.states_visited == 52_711
    assert isinstance(scenario.conf0, LoglessConfig)
