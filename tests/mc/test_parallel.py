"""Tests for the parallel, resumable model-checking engine.

The contract under test: for any worker count, batch size, or
interruption pattern, the level-synchronized parallel engine visits
exactly the states the sequential breadth-first search visits, reports
the same verdict, and finds the identical first violation.
"""

import os
import pickle
import warnings

import pytest

from repro.mc import (
    FIG4_BUDGET,
    Checkpoint,
    ExplorationResult,
    Explorer,
    OpBudget,
    ParallelExplorer,
    Violation,
    explore,
    insert_btw_explorer,
    load_checkpoint,
    merge_results,
    overlap_explorer,
    r2_explorer,
    r3_explorer,
    save_checkpoint,
    verify_intact,
    verify_intact_explorer,
)
from repro.mc.ablations import _hunt_explorer
from repro.schemes import RaftSingleNodeScheme

NODES3 = frozenset({1, 2, 3})
SCHEME = RaftSingleNodeScheme()

#: A quick exhaustive instance (about 2k states).
SMALL_BUDGET = OpBudget(pulls=1, invokes=2, reconfigs=1, pushes=2)


def assert_equivalent(seq: ExplorationResult, par: ExplorationResult) -> None:
    """The full engine-equivalence contract."""
    assert par.states_visited == seq.states_visited
    assert par.transitions == seq.transitions
    assert par.max_depth == seq.max_depth
    assert par.exhausted == seq.exhausted
    assert par.safe == seq.safe
    assert len(par.violations) == len(seq.violations)
    for mine, theirs in zip(par.violations, seq.violations):
        assert mine.trace == theirs.trace
        assert mine.state == theirs.state


# ----------------------------------------------------------------------
# Sequential-vs-parallel equivalence on the Fig. 4 schedule class
# ----------------------------------------------------------------------

#: Each FIG4_BUDGET instance the acceptance contract names: the intact
#: model and all four rule ablations, run as truncated BFS so the
#: comparison stays fast.  Truncation is part of the contract: both
#: engines must clip the state space at ``max_states`` identically.
FIG4_CAP = 1_200

FIG4_INSTANCES = [
    ("intact", lambda: _hunt_explorer(
        strategy="bfs", max_states=FIG4_CAP)),
    ("no-R3", lambda: r3_explorer(
        max_states=FIG4_CAP, strategy="bfs")),
    ("no-R2", lambda: r2_explorer(
        max_states=FIG4_CAP, strategy="bfs", budget=FIG4_BUDGET)),
    ("no-OVERLAP", lambda: overlap_explorer(
        max_states=FIG4_CAP, strategy="bfs", budget=FIG4_BUDGET)),
    ("insertBtw->addLeaf", lambda: insert_btw_explorer(
        max_states=FIG4_CAP, budget=FIG4_BUDGET)),
]


class TestFig4Equivalence:
    @pytest.mark.parametrize(
        "name,factory", FIG4_INSTANCES, ids=[n for n, _ in FIG4_INSTANCES]
    )
    def test_parallel_matches_sequential(self, name, factory):
        seq = factory().run()
        par = ParallelExplorer(factory(), workers=2).run()
        assert_equivalent(seq, par)

    def test_symmetry_reduction_keys_cross_process(self):
        # canonical_key dedup works when keys travel through the pool.
        def factory():
            return Explorer(
                SCHEME, NODES3, budget=SMALL_BUDGET, symmetry=True
            )

        seq = factory().run()
        par = ParallelExplorer(factory(), workers=2).run()
        assert_equivalent(seq, par)

    def test_batch_size_does_not_change_the_result(self):
        seq = verify_intact_explorer(SMALL_BUDGET).run()
        for batch_size in (1, 7, 64):
            par = ParallelExplorer(
                verify_intact_explorer(SMALL_BUDGET),
                workers=2, batch_size=batch_size,
            ).run()
            assert_equivalent(seq, par)


class TestViolationDeterminism:
    def test_first_violation_identical_across_worker_counts(self):
        # The insertBtw ablation is a BFS hunt with a violation at
        # depth 5: every engine configuration must report the same
        # minimal counterexample schedule.
        seq = insert_btw_explorer().run()
        assert not seq.safe
        for workers in (1, 2, 3):
            par = ParallelExplorer(insert_btw_explorer(), workers=workers).run()
            assert_equivalent(seq, par)
            assert par.violations[0].trace == seq.violations[0].trace


# ----------------------------------------------------------------------
# Checkpoint / resume
# ----------------------------------------------------------------------

class TestCheckpointResume:
    def test_interrupt_and_resume_round_trip(self, tmp_path):
        path = str(tmp_path / "run.ckpt")
        whole = verify_intact_explorer(SMALL_BUDGET).run()

        slice1 = ParallelExplorer(
            verify_intact_explorer(SMALL_BUDGET),
            workers=2, checkpoint=path, max_levels=2,
        ).run()
        assert slice1.interrupted
        assert not slice1.exhausted
        assert slice1.states_visited < whole.states_visited
        assert os.path.exists(path)

        resumed = ParallelExplorer(
            verify_intact_explorer(SMALL_BUDGET),
            workers=2, checkpoint=path,
        ).run()
        assert not resumed.interrupted
        assert_equivalent(whole, resumed)
        # A run that reached its verdict discards the checkpoint.
        assert not os.path.exists(path)

    def test_elapsed_accumulates_across_slices(self, tmp_path):
        path = str(tmp_path / "run.ckpt")
        slice1 = ParallelExplorer(
            verify_intact_explorer(SMALL_BUDGET),
            workers=1, checkpoint=path, max_levels=3,
        ).run()
        resumed = ParallelExplorer(
            verify_intact_explorer(SMALL_BUDGET),
            workers=1, checkpoint=path,
        ).run()
        assert resumed.elapsed_seconds >= slice1.elapsed_seconds

    def test_mismatched_fingerprint_starts_fresh_with_warning(self, tmp_path):
        path = str(tmp_path / "run.ckpt")
        ParallelExplorer(
            verify_intact_explorer(SMALL_BUDGET),
            workers=1, checkpoint=path, max_levels=1,
        ).run()
        other = verify_intact_explorer(OpBudget(2, 2, 2, 2))
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            loaded = load_checkpoint(path, other.config_fingerprint())
        assert loaded is None
        assert any("fingerprint" in str(w.message) for w in caught)

    def test_corrupt_checkpoint_is_ignored_with_warning(self, tmp_path):
        path = str(tmp_path / "garbage.ckpt")
        with open(path, "wb") as handle:
            handle.write(b"not a pickle")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert load_checkpoint(path) is None
        assert caught

    def test_version_mismatch_is_ignored(self, tmp_path):
        path = str(tmp_path / "old.ckpt")
        stale = Checkpoint(
            fingerprint="x", level=0, frontier=[], visited_keys=set(),
            transitions=0, max_depth=0, exhausted=True, version=-1,
        )
        save_checkpoint(path, stale)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert load_checkpoint(path) is None
        assert any("version" in str(w.message) for w in caught)

    def test_save_is_atomic(self, tmp_path):
        path = str(tmp_path / "atomic.ckpt")
        checkpoint = Checkpoint(
            fingerprint="f", level=1, frontier=[], visited_keys={1, 2},
            transitions=3, max_depth=1, exhausted=True,
        )
        save_checkpoint(path, checkpoint)
        save_checkpoint(path, checkpoint)  # overwrite in place
        assert load_checkpoint(path, "f").states_visited == 2
        leftovers = [
            name for name in os.listdir(tmp_path) if name.endswith(".tmp")
        ]
        assert leftovers == []


# ----------------------------------------------------------------------
# Engine plumbing
# ----------------------------------------------------------------------

class TestEngineOptions:
    def test_guided_strategy_rejected(self):
        guided = _hunt_explorer()
        assert guided.strategy == "guided"
        with pytest.raises(ValueError):
            ParallelExplorer(guided, workers=2)

    def test_bad_batch_size_rejected(self):
        with pytest.raises(ValueError):
            ParallelExplorer(
                verify_intact_explorer(SMALL_BUDGET), batch_size=0
            )

    def test_workers_zero_means_all_cores(self):
        engine = ParallelExplorer(
            verify_intact_explorer(SMALL_BUDGET), workers=0
        )
        assert engine.workers == (os.cpu_count() or 1)

    def test_explore_dispatches_sequentially_by_default(self):
        result = explore(verify_intact_explorer(SMALL_BUDGET))
        assert result.stats is None  # sequential path: no engine stats

    def test_explore_with_workers_reports_stats(self):
        result = explore(verify_intact_explorer(SMALL_BUDGET), workers=2)
        assert result.stats is not None
        assert result.stats.workers == 2
        assert result.stats.produced == result.transitions
        assert 0.0 <= result.stats.dedup_hit_rate <= 1.0
        assert result.stats.per_worker  # at least one worker reported
        assert "worker" in result.stats.describe()

    def test_progress_snapshots_are_emitted_per_level(self):
        snapshots = []
        result = ParallelExplorer(
            verify_intact_explorer(SMALL_BUDGET),
            workers=1, progress=snapshots.append,
        ).run()
        assert snapshots
        assert [s.level for s in snapshots] == list(
            range(1, len(snapshots) + 1)
        )
        assert snapshots[-1].states_visited == result.states_visited
        assert snapshots[-1].next_frontier == 0
        assert "states/s" in snapshots[-1].describe()

    def test_metrics_registry_tracks_exploration(self):
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()
        result = ParallelExplorer(
            verify_intact_explorer(SMALL_BUDGET),
            workers=1, metrics=metrics,
        ).run()
        snap = metrics.snapshot()
        # The structured replacement of print_progress: per-level
        # counters/gauges plus a per-level throughput histogram.
        assert snap["counters"]["mc.levels"] == result.stats.levels
        assert snap["gauges"]["mc.states"] == result.states_visited
        assert snap["gauges"]["mc.transitions"] == result.transitions
        assert snap["gauges"]["mc.frontier"] == 0  # exhausted
        assert 0.0 <= snap["gauges"]["mc.dedup_hit_rate"] <= 1.0
        throughput = snap["histograms"]["mc.level_states_per_second"]
        assert throughput["count"] >= 1
        assert throughput["min"] > 0.0

    def test_metrics_thread_through_explore(self):
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()
        result = explore(
            verify_intact_explorer(SMALL_BUDGET), workers=2, metrics=metrics
        )
        assert metrics.counter("mc.levels").value == result.stats.levels

    def test_metrics_default_to_the_null_registry(self):
        from repro.obs import NULL_METRICS

        engine = ParallelExplorer(verify_intact_explorer(SMALL_BUDGET))
        assert engine.metrics is NULL_METRICS

    def test_verify_intact_workers_api(self):
        seq = verify_intact(budget=SMALL_BUDGET)
        par = verify_intact(budget=SMALL_BUDGET, workers=2)
        assert_equivalent(seq, par)

    def test_results_are_picklable(self):
        # CI shards ship results between processes; the whole result
        # object (stats included) must survive a round trip.
        result = explore(verify_intact_explorer(SMALL_BUDGET), workers=2)
        clone = pickle.loads(pickle.dumps(result))
        assert clone.states_visited == result.states_visited
        assert clone.stats.produced == result.stats.produced


# ----------------------------------------------------------------------
# merge_results
# ----------------------------------------------------------------------

def _result(states=1, transitions=1, depth=1, exhausted=True,
            violations=(), elapsed=1.0):
    return ExplorationResult(
        states_visited=states,
        transitions=transitions,
        max_depth=depth,
        exhausted=exhausted,
        violations=list(violations),
        elapsed_seconds=elapsed,
        budget=SMALL_BUDGET,
    )


def _violation(trace):
    return Violation(state=None, trace=trace, report=None)


class TestMergeResults:
    def test_counters_combine(self):
        merged = merge_results([
            _result(states=10, transitions=12, depth=3, elapsed=2.0),
            _result(states=5, transitions=6, depth=5, elapsed=1.0),
        ])
        assert merged.states_visited == 15
        assert merged.transitions == 18
        assert merged.max_depth == 5
        assert merged.exhausted
        assert merged.elapsed_seconds == 2.0
        assert merged.safe

    def test_exhausted_only_if_all_parts_were(self):
        merged = merge_results([
            _result(exhausted=True), _result(exhausted=False),
        ])
        assert not merged.exhausted

    def test_first_violation_wins_deterministically(self):
        shallow = _violation((("push", 1, "a"),))
        deep = _violation((("pull", 1, "x"), ("push", 1, "y")))
        lex_smaller = _violation((("invoke", 1, "m"),))
        # Partition order must not matter; depth first, then lex order.
        for ordering in (
            [_result(violations=[deep]), _result(violations=[shallow, lex_smaller])],
            [_result(violations=[lex_smaller, shallow]), _result(violations=[deep])],
        ):
            merged = merge_results(ordering)
            assert merged.violations[0].trace == lex_smaller.trace
            assert merged.violations[-1].trace == deep.trace

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            merge_results([])
