"""Corrupt-checkpoint robustness (ISSUE 3 bugfix b).

``load_checkpoint`` promises *None on any unusable file*: a resumed CI
run must redo work, never crash, when a checkpoint was half-written by
a killed worker or mangled on disk.  The original handler caught only
``(OSError, UnpicklingError, EOFError, AttributeError)``; real corrupt
pickles also raise ``ValueError`` (bad opcode arguments, including its
``UnicodeDecodeError`` subclass), ``OverflowError``, ``IndexError``,
and ``ModuleNotFoundError`` (a damaged GLOBAL opcode).  Each test here
pins one concrete corruption; the module-rename and bad-int cases fail
with the broadened handler reverted.
"""

import pickle
import random
import warnings

import pytest

from repro.mc import Checkpoint, FingerprintSet, load_checkpoint, save_checkpoint
from repro.mc.checkpoint import CHECKPOINT_VERSION


def make_checkpoint(path: str) -> bytes:
    checkpoint = Checkpoint(
        fingerprint="f", level=2, frontier=[], visited_keys={1, 2, 3},
        transitions=9, max_depth=2, exhausted=False,
    )
    save_checkpoint(path, checkpoint)
    with open(path, "rb") as handle:
        return handle.read()


def assert_ignored_with_warning(path: str) -> None:
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        assert load_checkpoint(path) is None
    assert any("ignoring" in str(w.message) for w in caught)


class TestCorruptPickles:
    def test_truncated_file(self, tmp_path):
        path = str(tmp_path / "trunc.ckpt")
        data = make_checkpoint(path)
        with open(path, "wb") as handle:
            handle.write(data[: len(data) // 2])
        assert_ignored_with_warning(path)

    @pytest.mark.parametrize(
        "seed",
        # Seeds chosen so the 256 random bytes deterministically raise,
        # in order: UnpicklingError, ValueError, UnicodeDecodeError,
        # and OverflowError inside pickle.load.
        [0, 5, 26, 124],
    )
    def test_random_bytes_file(self, tmp_path, seed):
        rng = random.Random(seed)
        path = str(tmp_path / f"noise{seed}.ckpt")
        with open(path, "wb") as handle:
            handle.write(bytes(rng.randrange(256) for _ in range(256)))
        assert_ignored_with_warning(path)

    def test_bad_int_literal_raises_value_error_and_is_ignored(self, tmp_path):
        # A protocol-0 INT opcode with a mangled argument: pickle.load
        # raises plain ValueError, which the original handler missed.
        path = str(tmp_path / "badint.ckpt")
        with open(path, "wb") as handle:
            handle.write(b"Iabc\n.")
        with pytest.raises(ValueError):
            with open(path, "rb") as handle:
                pickle.load(handle)
        assert_ignored_with_warning(path)

    def test_damaged_module_name_is_ignored(self, tmp_path):
        # Same-length byte damage to the GLOBAL opcode's module name:
        # pickle.load raises ModuleNotFoundError, which the original
        # handler missed.
        path = str(tmp_path / "badmod.ckpt")
        data = make_checkpoint(path)
        assert b"repro.mc.checkpoint" in data
        with open(path, "wb") as handle:
            handle.write(
                data.replace(b"repro.mc.checkpoint", b"repro.mc.checkpoinX")
            )
        with pytest.raises(ModuleNotFoundError):
            with open(path, "rb") as handle:
                pickle.load(handle)
        assert_ignored_with_warning(path)

    def test_wrong_type_pickle_is_ignored(self, tmp_path):
        # Loads fine but is not a Checkpoint: the isinstance gate.
        path = str(tmp_path / "dict.ckpt")
        with open(path, "wb") as handle:
            pickle.dump({"not": "a checkpoint"}, handle)
        assert_ignored_with_warning(path)

    def test_intact_checkpoint_still_loads(self, tmp_path):
        # The broadened handler must not eat healthy files.
        path = str(tmp_path / "ok.ckpt")
        make_checkpoint(path)
        loaded = load_checkpoint(path, "f")
        assert loaded is not None
        assert loaded.states_visited == 3

    def test_missing_file_is_silently_none(self, tmp_path):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert load_checkpoint(str(tmp_path / "absent.ckpt")) is None
        assert caught == []


class TestVersioning:
    """Format-v2 behavior (ISSUE 5: compact visited set)."""

    def test_current_version_is_two(self):
        assert CHECKPOINT_VERSION == 2

    def test_v1_checkpoint_rejected_with_versioned_message(self, tmp_path):
        path = str(tmp_path / "v1.ckpt")
        old = Checkpoint(
            fingerprint="f", level=1, frontier=[], visited_keys={1, 2},
            transitions=3, max_depth=1, exhausted=False, version=1,
        )
        save_checkpoint(path, old)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert load_checkpoint(path, "f") is None
        messages = [str(w.message) for w in caught]
        assert any(
            "version 1" in m and "re-run" in m for m in messages
        ), messages

    def test_future_version_rejected(self, tmp_path):
        path = str(tmp_path / "v9.ckpt")
        future = Checkpoint(
            fingerprint="f", level=0, frontier=[], visited_keys=set(),
            transitions=0, max_depth=0, exhausted=True, version=99,
        )
        save_checkpoint(path, future)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert load_checkpoint(path, "f") is None
        assert any("99" in str(w.message) for w in caught)


class TestFingerprintVisited:
    """The compact visited-set payload round-trips exactly."""

    @staticmethod
    def make_fps(n):
        rng = random.Random(42)
        fps = FingerprintSet()
        while len(fps) < n:
            value = rng.getrandbits(128)
            if value:
                fps.add(value)
        return fps

    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "fp.ckpt")
        fps = self.make_fps(500)
        checkpoint = Checkpoint(
            fingerprint="f", level=4, frontier=[], visited_keys=set(),
            transitions=123, max_depth=4, exhausted=False,
            visited_fps=fps.to_bytes(),
        )
        save_checkpoint(path, checkpoint)
        loaded = load_checkpoint(path, "f")
        assert loaded is not None
        assert loaded.states_visited == 500
        restored = loaded.restore_visited()
        assert isinstance(restored, FingerprintSet)
        assert restored.to_bytes() == fps.to_bytes()

    def test_legacy_keys_still_supported(self, tmp_path):
        # Exact-equality (fingerprints=False) runs keep pickling their
        # key sets; a v2 checkpoint without visited_fps restores a set.
        path = str(tmp_path / "keys.ckpt")
        checkpoint = Checkpoint(
            fingerprint="f", level=1, frontier=[], visited_keys={1, 2, 3},
            transitions=5, max_depth=1, exhausted=True,
        )
        save_checkpoint(path, checkpoint)
        loaded = load_checkpoint(path, "f")
        assert loaded.states_visited == 3
        assert loaded.restore_visited() == {1, 2, 3}

    def test_checkpoint_size_shrinks(self, tmp_path):
        # The point of the format: 16 bytes per state instead of a
        # pickled state object (hundreds of bytes).
        fps = self.make_fps(1000)
        compact = pickle.dumps(Checkpoint(
            fingerprint="f", level=1, frontier=[], visited_keys=set(),
            transitions=0, max_depth=1, exhausted=False,
            visited_fps=fps.to_bytes(),
        ))
        # A very conservative stand-in for "state object": a 10-tuple
        # of small tuples per state.
        fat_keys = {
            tuple((i, j, f"label{j}") for j in range(10)) for i in range(1000)
        }
        fat = pickle.dumps(Checkpoint(
            fingerprint="f", level=1, frontier=[], visited_keys=fat_keys,
            transitions=0, max_depth=1, exhausted=False,
        ))
        assert len(compact) < len(fat) / 5
