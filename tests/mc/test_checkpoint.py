"""Corrupt-checkpoint robustness (ISSUE 3 bugfix b).

``load_checkpoint`` promises *None on any unusable file*: a resumed CI
run must redo work, never crash, when a checkpoint was half-written by
a killed worker or mangled on disk.  The original handler caught only
``(OSError, UnpicklingError, EOFError, AttributeError)``; real corrupt
pickles also raise ``ValueError`` (bad opcode arguments, including its
``UnicodeDecodeError`` subclass), ``OverflowError``, ``IndexError``,
and ``ModuleNotFoundError`` (a damaged GLOBAL opcode).  Each test here
pins one concrete corruption; the module-rename and bad-int cases fail
with the broadened handler reverted.
"""

import pickle
import random
import warnings

import pytest

from repro.mc import Checkpoint, FingerprintSet, load_checkpoint, save_checkpoint
from repro.mc.checkpoint import CHECKPOINT_VERSION


def make_checkpoint(path: str) -> bytes:
    checkpoint = Checkpoint(
        fingerprint="f", level=2, frontier=[], visited_keys={1, 2, 3},
        transitions=9, max_depth=2, exhausted=False,
    )
    save_checkpoint(path, checkpoint)
    with open(path, "rb") as handle:
        return handle.read()


def assert_ignored_with_warning(path: str) -> None:
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        assert load_checkpoint(path) is None
    assert any("ignoring" in str(w.message) for w in caught)


class TestCorruptPickles:
    def test_truncated_file(self, tmp_path):
        path = str(tmp_path / "trunc.ckpt")
        data = make_checkpoint(path)
        with open(path, "wb") as handle:
            handle.write(data[: len(data) // 2])
        assert_ignored_with_warning(path)

    @pytest.mark.parametrize(
        "seed",
        # Seeds chosen so the 256 random bytes deterministically raise,
        # in order: UnpicklingError, ValueError, UnicodeDecodeError,
        # and OverflowError inside pickle.load.
        [0, 5, 26, 124],
    )
    def test_random_bytes_file(self, tmp_path, seed):
        rng = random.Random(seed)
        path = str(tmp_path / f"noise{seed}.ckpt")
        with open(path, "wb") as handle:
            handle.write(bytes(rng.randrange(256) for _ in range(256)))
        assert_ignored_with_warning(path)

    def test_bad_int_literal_raises_value_error_and_is_ignored(self, tmp_path):
        # A protocol-0 INT opcode with a mangled argument: pickle.load
        # raises plain ValueError, which the original handler missed.
        path = str(tmp_path / "badint.ckpt")
        with open(path, "wb") as handle:
            handle.write(b"Iabc\n.")
        with pytest.raises(ValueError):
            with open(path, "rb") as handle:
                pickle.load(handle)
        assert_ignored_with_warning(path)

    def test_damaged_module_name_is_ignored(self, tmp_path):
        # Same-length byte damage to the GLOBAL opcode's module name:
        # pickle.load raises ModuleNotFoundError, which the original
        # handler missed.
        path = str(tmp_path / "badmod.ckpt")
        data = make_checkpoint(path)
        assert b"repro.mc.checkpoint" in data
        with open(path, "wb") as handle:
            handle.write(
                data.replace(b"repro.mc.checkpoint", b"repro.mc.checkpoinX")
            )
        with pytest.raises(ModuleNotFoundError):
            with open(path, "rb") as handle:
                pickle.load(handle)
        assert_ignored_with_warning(path)

    def test_wrong_type_pickle_is_ignored(self, tmp_path):
        # Loads fine but is not a Checkpoint: the isinstance gate.
        path = str(tmp_path / "dict.ckpt")
        with open(path, "wb") as handle:
            pickle.dump({"not": "a checkpoint"}, handle)
        assert_ignored_with_warning(path)

    def test_intact_checkpoint_still_loads(self, tmp_path):
        # The broadened handler must not eat healthy files.
        path = str(tmp_path / "ok.ckpt")
        make_checkpoint(path)
        loaded = load_checkpoint(path, "f")
        assert loaded is not None
        assert loaded.states_visited == 3

    def test_missing_file_is_silently_none(self, tmp_path):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert load_checkpoint(str(tmp_path / "absent.ckpt")) is None
        assert caught == []


class TestVersioning:
    """Format versioning (v2: compact visited set; v3: spill sidecars)."""

    def test_current_version_is_three(self):
        assert CHECKPOINT_VERSION == 3

    def test_v2_checkpoint_still_loads(self, tmp_path):
        # A pre-spill checkpoint (no sidecar fields) must resume: its
        # dataclass defaults (`None` refs) mean "everything embedded".
        path = str(tmp_path / "v2.ckpt")
        old = Checkpoint(
            fingerprint="f", level=1, frontier=[("s", "b", ())],
            visited_keys={1, 2}, transitions=3, max_depth=1,
            exhausted=False, version=2,
        )
        save_checkpoint(path, old)
        loaded = load_checkpoint(path, "f")
        assert loaded is not None
        assert loaded.frontier_ref is None and loaded.visited_ref is None
        assert list(loaded.restore_frontier(path)) == [("s", "b", ())]
        assert loaded.restore_visited(path) == {1, 2}

    def test_v1_checkpoint_rejected_with_versioned_message(self, tmp_path):
        path = str(tmp_path / "v1.ckpt")
        old = Checkpoint(
            fingerprint="f", level=1, frontier=[], visited_keys={1, 2},
            transitions=3, max_depth=1, exhausted=False, version=1,
        )
        save_checkpoint(path, old)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert load_checkpoint(path, "f") is None
        messages = [str(w.message) for w in caught]
        assert any(
            "version 1" in m and "re-run" in m for m in messages
        ), messages

    def test_future_version_rejected(self, tmp_path):
        path = str(tmp_path / "v9.ckpt")
        future = Checkpoint(
            fingerprint="f", level=0, frontier=[], visited_keys=set(),
            transitions=0, max_depth=0, exhausted=True, version=99,
        )
        save_checkpoint(path, future)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert load_checkpoint(path, "f") is None
        assert any("99" in str(w.message) for w in caught)


class TestFingerprintVisited:
    """The compact visited-set payload round-trips exactly."""

    @staticmethod
    def make_fps(n):
        rng = random.Random(42)
        fps = FingerprintSet()
        while len(fps) < n:
            value = rng.getrandbits(128)
            if value:
                fps.add(value)
        return fps

    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "fp.ckpt")
        fps = self.make_fps(500)
        checkpoint = Checkpoint(
            fingerprint="f", level=4, frontier=[], visited_keys=set(),
            transitions=123, max_depth=4, exhausted=False,
            visited_fps=fps.to_bytes(),
        )
        save_checkpoint(path, checkpoint)
        loaded = load_checkpoint(path, "f")
        assert loaded is not None
        assert loaded.states_visited == 500
        restored = loaded.restore_visited()
        assert isinstance(restored, FingerprintSet)
        assert restored.to_bytes() == fps.to_bytes()

    def test_legacy_keys_still_supported(self, tmp_path):
        # Exact-equality (fingerprints=False) runs keep pickling their
        # key sets; a v2 checkpoint without visited_fps restores a set.
        path = str(tmp_path / "keys.ckpt")
        checkpoint = Checkpoint(
            fingerprint="f", level=1, frontier=[], visited_keys={1, 2, 3},
            transitions=5, max_depth=1, exhausted=True,
        )
        save_checkpoint(path, checkpoint)
        loaded = load_checkpoint(path, "f")
        assert loaded.states_visited == 3
        assert loaded.restore_visited() == {1, 2, 3}

    def test_checkpoint_size_shrinks(self, tmp_path):
        # The point of the format: 16 bytes per state instead of a
        # pickled state object (hundreds of bytes).
        fps = self.make_fps(1000)
        compact = pickle.dumps(Checkpoint(
            fingerprint="f", level=1, frontier=[], visited_keys=set(),
            transitions=0, max_depth=1, exhausted=False,
            visited_fps=fps.to_bytes(),
        ))
        # A very conservative stand-in for "state object": a 10-tuple
        # of small tuples per state.
        fat_keys = {
            tuple((i, j, f"label{j}") for j in range(10)) for i in range(1000)
        }
        fat = pickle.dumps(Checkpoint(
            fingerprint="f", level=1, frontier=[], visited_keys=fat_keys,
            transitions=0, max_depth=1, exhausted=False,
        ))
        assert len(compact) < len(fat) / 5


class TestSpillSidecars:
    """v3 sidecar references: verified by content fingerprint at load."""

    @staticmethod
    def make_v3(tmp_path, mutate=None):
        import os

        from repro.mc.spill import file_sha256, write_packed_records

        path = str(tmp_path / "run.ckpt")
        entries = [("state-a", "budget", ()), ("state-b", "budget", ("op",))]
        sha_frontier = write_packed_records(path + ".frontier", iter(entries))
        fps = FingerprintSet.spilled(str(tmp_path / "work.fps"), expected=8)
        for value in (10, 20, 30):
            fps.add(value)
        fps.sync()
        import shutil

        shutil.copyfile(fps.spill_path, path + ".visited")
        fps.close()
        checkpoint = Checkpoint(
            fingerprint="f", level=2, frontier=[], visited_keys=set(),
            transitions=7, max_depth=2, exhausted=False,
            frontier_ref={
                "file": os.path.basename(path + ".frontier"),
                "sha256": sha_frontier,
                "count": len(entries),
            },
            visited_ref={
                "file": os.path.basename(path + ".visited"),
                "sha256": file_sha256(path + ".visited"),
                "count": 3,
            },
        )
        if mutate is not None:
            mutate(path, checkpoint)
        save_checkpoint(path, checkpoint)
        return path, entries

    def test_round_trip(self, tmp_path):
        path, entries = self.make_v3(tmp_path)
        loaded = load_checkpoint(path, "f")
        assert loaded is not None
        assert loaded.states_visited == 3
        assert loaded.frontier_len == 2
        assert list(loaded.restore_frontier(path)) == entries
        restored = loaded.restore_visited(path)
        assert sorted(restored) == [10, 20, 30]

    def test_restore_visited_into_working_spill_file(self, tmp_path):
        path, _ = self.make_v3(tmp_path)
        loaded = load_checkpoint(path, "f")
        working = str(tmp_path / "spill" / "visited.fps")
        restored = loaded.restore_visited(path, spill_to=working)
        try:
            assert restored.spill_path == working
            assert sorted(restored) == [10, 20, 30]
            restored.add(40)  # mutating the working copy...
        finally:
            restored.close()
        # ...leaves the snapshot pristine: a second resume still loads.
        assert load_checkpoint(path, "f") is not None

    def test_missing_sidecar_rejected(self, tmp_path):
        import os

        path, _ = self.make_v3(tmp_path)
        os.unlink(path + ".frontier")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert load_checkpoint(path, "f") is None
        assert any("missing or unreadable" in str(w.message) for w in caught)

    @pytest.mark.parametrize("sidecar", [".frontier", ".visited"])
    def test_corrupt_sidecar_rejected(self, tmp_path, sidecar):
        path, _ = self.make_v3(tmp_path)
        with open(path + sidecar, "r+b") as handle:
            handle.seek(3)
            byte = handle.read(1)
            handle.seek(3)
            handle.write(bytes([byte[0] ^ 0xFF]))
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert load_checkpoint(path, "f") is None
        assert any("content fingerprint" in str(w.message) for w in caught)

    def test_truncated_sidecar_rejected(self, tmp_path):
        import os

        path, _ = self.make_v3(tmp_path)
        size = os.path.getsize(path + ".visited")
        with open(path + ".visited", "r+b") as handle:
            handle.truncate(size // 2)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert load_checkpoint(path, "f") is None
        assert any("content fingerprint" in str(w.message) for w in caught)

    def test_sidecar_needs_checkpoint_path(self, tmp_path):
        path, _ = self.make_v3(tmp_path)
        loaded = load_checkpoint(path, "f")
        with pytest.raises(ValueError):
            loaded.restore_frontier(None)

    def test_truncated_frontier_records_raise(self, tmp_path):
        from repro.mc.spill import iter_packed_records, write_packed_records

        path = str(tmp_path / "records.spill")
        write_packed_records(path, iter([("a", 1), ("b", 2)]))
        import os

        with open(path, "r+b") as handle:
            handle.truncate(os.path.getsize(path) - 3)
        with pytest.raises(ValueError):
            list(iter_packed_records(path))
