"""Corrupt-checkpoint robustness (ISSUE 3 bugfix b).

``load_checkpoint`` promises *None on any unusable file*: a resumed CI
run must redo work, never crash, when a checkpoint was half-written by
a killed worker or mangled on disk.  The original handler caught only
``(OSError, UnpicklingError, EOFError, AttributeError)``; real corrupt
pickles also raise ``ValueError`` (bad opcode arguments, including its
``UnicodeDecodeError`` subclass), ``OverflowError``, ``IndexError``,
and ``ModuleNotFoundError`` (a damaged GLOBAL opcode).  Each test here
pins one concrete corruption; the module-rename and bad-int cases fail
with the broadened handler reverted.
"""

import pickle
import random
import warnings

import pytest

from repro.mc import Checkpoint, load_checkpoint, save_checkpoint


def make_checkpoint(path: str) -> bytes:
    checkpoint = Checkpoint(
        fingerprint="f", level=2, frontier=[], visited_keys={1, 2, 3},
        transitions=9, max_depth=2, exhausted=False,
    )
    save_checkpoint(path, checkpoint)
    with open(path, "rb") as handle:
        return handle.read()


def assert_ignored_with_warning(path: str) -> None:
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        assert load_checkpoint(path) is None
    assert any("ignoring" in str(w.message) for w in caught)


class TestCorruptPickles:
    def test_truncated_file(self, tmp_path):
        path = str(tmp_path / "trunc.ckpt")
        data = make_checkpoint(path)
        with open(path, "wb") as handle:
            handle.write(data[: len(data) // 2])
        assert_ignored_with_warning(path)

    @pytest.mark.parametrize(
        "seed",
        # Seeds chosen so the 256 random bytes deterministically raise,
        # in order: UnpicklingError, ValueError, UnicodeDecodeError,
        # and OverflowError inside pickle.load.
        [0, 5, 26, 124],
    )
    def test_random_bytes_file(self, tmp_path, seed):
        rng = random.Random(seed)
        path = str(tmp_path / f"noise{seed}.ckpt")
        with open(path, "wb") as handle:
            handle.write(bytes(rng.randrange(256) for _ in range(256)))
        assert_ignored_with_warning(path)

    def test_bad_int_literal_raises_value_error_and_is_ignored(self, tmp_path):
        # A protocol-0 INT opcode with a mangled argument: pickle.load
        # raises plain ValueError, which the original handler missed.
        path = str(tmp_path / "badint.ckpt")
        with open(path, "wb") as handle:
            handle.write(b"Iabc\n.")
        with pytest.raises(ValueError):
            with open(path, "rb") as handle:
                pickle.load(handle)
        assert_ignored_with_warning(path)

    def test_damaged_module_name_is_ignored(self, tmp_path):
        # Same-length byte damage to the GLOBAL opcode's module name:
        # pickle.load raises ModuleNotFoundError, which the original
        # handler missed.
        path = str(tmp_path / "badmod.ckpt")
        data = make_checkpoint(path)
        assert b"repro.mc.checkpoint" in data
        with open(path, "wb") as handle:
            handle.write(
                data.replace(b"repro.mc.checkpoint", b"repro.mc.checkpoinX")
            )
        with pytest.raises(ModuleNotFoundError):
            with open(path, "rb") as handle:
                pickle.load(handle)
        assert_ignored_with_warning(path)

    def test_wrong_type_pickle_is_ignored(self, tmp_path):
        # Loads fine but is not a Checkpoint: the isinstance gate.
        path = str(tmp_path / "dict.ckpt")
        with open(path, "wb") as handle:
            pickle.dump({"not": "a checkpoint"}, handle)
        assert_ignored_with_warning(path)

    def test_intact_checkpoint_still_loads(self, tmp_path):
        # The broadened handler must not eat healthy files.
        path = str(tmp_path / "ok.ckpt")
        make_checkpoint(path)
        loaded = load_checkpoint(path, "f")
        assert loaded is not None
        assert loaded.states_visited == 3

    def test_missing_file_is_silently_none(self, tmp_path):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert load_checkpoint(str(tmp_path / "absent.ckpt")) is None
        assert caught == []
