"""Tests for the compact fingerprint visited-set (ISSUE 5 tentpole c)."""

import random

import pytest

from repro.mc.fpset import FingerprintSet


def fps(n, seed=0):
    rng = random.Random(seed)
    out = []
    seen = set()
    while len(out) < n:
        fp = rng.getrandbits(128)
        if fp and fp not in seen:
            seen.add(fp)
            out.append(fp)
    return out


class TestBasics:
    def test_add_contains_len(self):
        s = FingerprintSet()
        values = fps(2000)
        for fp in values:
            assert fp not in s
            assert s.add(fp)
            assert fp in s
        assert len(s) == len(values)
        for fp in values:
            assert not s.add(fp)  # idempotent
        assert len(s) == len(values)

    def test_absent_values(self):
        s = FingerprintSet()
        present = fps(500, seed=1)
        absent = [fp for fp in fps(500, seed=2) if fp not in set(present)]
        for fp in present:
            s.add(fp)
        for fp in absent:
            assert fp not in s

    def test_grows_past_initial_capacity(self):
        s = FingerprintSet(capacity=64)
        values = fps(10_000, seed=3)
        for fp in values:
            s.add(fp)
        assert len(s) == len(values)
        assert s.capacity > 64
        assert set(s) == set(values)

    def test_iteration_yields_each_once(self):
        s = FingerprintSet()
        values = fps(333, seed=4)
        for fp in values:
            s.add(fp)
        assert sorted(s) == sorted(values)

    def test_rejects_zero_and_out_of_range(self):
        s = FingerprintSet()
        for bad in (0, -1, 1 << 128):
            with pytest.raises(ValueError):
                s.add(bad)

    def test_adversarial_same_slot_probing(self):
        # Values colliding on the initial probe slot must chain, not lose
        # each other.
        s = FingerprintSet(capacity=64)
        values = [(i << 64) | 5 for i in range(1, 40)]  # same low bits
        for fp in values:
            s.add(fp)
        for fp in values:
            assert fp in s
        assert len(s) == len(values)


class TestPacking:
    def test_to_bytes_is_canonical(self):
        values = fps(100, seed=5)
        a = FingerprintSet(capacity=64)
        b = FingerprintSet(capacity=4096)
        for fp in values:
            a.add(fp)
        for fp in reversed(values):
            b.add(fp)
        # Same contents => same bytes, regardless of capacity and
        # insertion order.
        assert a.to_bytes() == b.to_bytes()
        assert len(a.to_bytes()) == 16 * len(values)

    def test_from_packed_round_trip(self):
        s = FingerprintSet()
        for fp in fps(777, seed=6):
            s.add(fp)
        restored = FingerprintSet.from_packed(s.to_bytes())
        assert len(restored) == len(s)
        assert set(restored) == set(s)
        assert restored.to_bytes() == s.to_bytes()

    def test_from_packed_rejects_ragged_input(self):
        with pytest.raises(ValueError):
            FingerprintSet.from_packed(b"\x01" * 17)


class TestFixedBuffers:
    def test_attach_and_fill(self):
        values = fps(1000, seed=7)
        buf = bytearray(FingerprintSet.buffer_bytes(len(values)))
        s = FingerprintSet.attach(buf, clear=True)
        assert s.fixed
        for fp in values:
            s.add(fp)
        assert len(s) == len(values)
        for fp in values:
            assert fp in s

    def test_reattach_sees_contents(self):
        # A second attachment to the same region (what a fork-shared
        # SharedMemory view amounts to) must see the first one's writes.
        values = fps(300, seed=8)
        buf = bytearray(FingerprintSet.buffer_bytes(len(values)))
        writer = FingerprintSet.attach(buf, clear=True)
        for fp in values:
            writer.add(fp)
        reader = FingerprintSet.attach(buf)
        assert len(reader) == len(values)
        assert all(fp in reader for fp in values)

    def test_fixed_buffer_overflow_raises(self):
        buf = bytearray(64 * 16)
        s = FingerprintSet.attach(buf, clear=True)
        with pytest.raises(OverflowError):
            for fp in fps(64, seed=9):
                s.add(fp)

    def test_attach_validates_geometry(self):
        with pytest.raises(ValueError):
            FingerprintSet.attach(bytearray(100))  # not a multiple of 16
        with pytest.raises(ValueError):
            FingerprintSet.attach(bytearray(48))  # 3 slots: not a power of 2

    def test_buffer_bytes_leaves_load_headroom(self):
        for expected in (1, 10, 1000, 500_000):
            nbytes = FingerprintSet.buffer_bytes(expected)
            capacity = nbytes // 16
            assert capacity & (capacity - 1) == 0
            # expected entries stay within the 2/3 load bound.
            assert expected * 3 <= capacity * 2


class TestSpilled:
    """The mmap-backed spill mode must be extensionally equal to the
    in-RAM table: same membership answers, same canonical packing, same
    growth behavior -- only the backing storage differs."""

    def test_add_contains_matches_ram(self, tmp_path):
        ram = FingerprintSet()
        spilled = FingerprintSet.spilled(str(tmp_path / "v.fps"), expected=64)
        values = fps(2000, seed=10)
        for fp in values:
            assert ram.add(fp) == spilled.add(fp)
            assert (fp in ram) == (fp in spilled)
        absent = [fp for fp in fps(500, seed=11) if fp not in set(values)]
        for fp in absent:
            assert (fp in ram) == (fp in spilled) is False
        assert len(spilled) == len(ram)
        assert sorted(spilled) == sorted(ram)
        spilled.close()

    def test_growth_replaces_file_and_keeps_contents(self, tmp_path):
        path = str(tmp_path / "v.fps")
        s = FingerprintSet.spilled(path, expected=4)
        initial_capacity = s.capacity
        values = fps(5000, seed=12)
        for fp in values:
            s.add(fp)
        assert s.capacity > initial_capacity
        assert set(s) == set(values)
        # Growth swapped a larger file in under the same path.
        import os

        assert os.path.getsize(path) == s.capacity * 16
        assert not os.path.exists(path + ".grow")
        s.close()

    def test_reopen_existing_file(self, tmp_path):
        path = str(tmp_path / "v.fps")
        values = fps(800, seed=13)
        writer = FingerprintSet.spilled(path, expected=len(values))
        for fp in values:
            writer.add(fp)
        writer.sync()
        packed = writer.to_bytes()
        writer.close()
        reader = FingerprintSet.spilled(path, clear=False)
        assert len(reader) == len(values)
        assert all(fp in reader for fp in values)
        assert reader.to_bytes() == packed
        reader.close()

    def test_packing_is_identical_to_ram(self, tmp_path):
        values = fps(600, seed=14)
        ram = FingerprintSet()
        spilled = FingerprintSet.spilled(str(tmp_path / "v.fps"), expected=8)
        for fp in values:
            ram.add(fp)
            spilled.add(fp)
        assert spilled.to_bytes() == ram.to_bytes()
        restored = FingerprintSet.from_packed(spilled.to_bytes())
        assert set(restored) == set(values)
        spilled.close()

    def test_content_digest_is_layout_independent(self, tmp_path):
        values = fps(300, seed=15)
        small = FingerprintSet.spilled(str(tmp_path / "a.fps"), expected=1)
        big = FingerprintSet(capacity=8192)
        for fp in values:
            small.add(fp)
        for fp in reversed(values):
            big.add(fp)
        assert small.content_digest() == big.content_digest()
        big.add(fps(1, seed=16)[0])
        assert small.content_digest() != big.content_digest()
        small.close()

    def test_spilled_rejects_ragged_existing_file(self, tmp_path):
        path = tmp_path / "bad.fps"
        path.write_bytes(b"\x00" * 100)  # not a multiple of 16
        with pytest.raises(ValueError):
            FingerprintSet.spilled(str(path), clear=False)
        path.write_bytes(b"\x00" * 48)  # 3 slots: not a power of two
        with pytest.raises(ValueError):
            FingerprintSet.spilled(str(path), clear=False)


class TestSpilledProperties:
    """Hypothesis: for any operation sequence, spill mode and RAM mode
    are observationally identical."""

    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st

    fingerprints = st.integers(min_value=1, max_value=(1 << 128) - 1)

    @given(ops=st.lists(
        st.tuples(st.sampled_from(["add", "contains"]), fingerprints),
        max_size=300,
    ))
    @settings(max_examples=50, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_op_sequence_equivalence(self, ops, tmp_path):
        import tempfile

        with tempfile.TemporaryDirectory(dir=tmp_path) as td:
            ram = FingerprintSet(capacity=16)
            spilled = FingerprintSet.spilled(td + "/v.fps", expected=1)
            try:
                for op, fp in ops:
                    if op == "add":
                        assert ram.add(fp) == spilled.add(fp)
                    else:
                        assert (fp in ram) == (fp in spilled)
                assert len(ram) == len(spilled)
                assert sorted(ram) == sorted(spilled)
                assert ram.to_bytes() == spilled.to_bytes()
                assert ram.content_digest() == spilled.content_digest()
            finally:
                spilled.close()

    @given(values=st.lists(fingerprints, unique=True, max_size=200))
    @settings(max_examples=50, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_pack_round_trip_through_disk(self, values, tmp_path):
        import tempfile

        with tempfile.TemporaryDirectory(dir=tmp_path) as td:
            spilled = FingerprintSet.spilled(td + "/v.fps", expected=2)
            try:
                for fp in values:
                    spilled.add(fp)
                spilled.sync()
                packed = spilled.to_bytes()
            finally:
                spilled.close()
            restored = FingerprintSet.from_packed(packed)
            assert sorted(restored) == sorted(values)
