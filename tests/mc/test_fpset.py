"""Tests for the compact fingerprint visited-set (ISSUE 5 tentpole c)."""

import random

import pytest

from repro.mc.fpset import FingerprintSet


def fps(n, seed=0):
    rng = random.Random(seed)
    out = []
    seen = set()
    while len(out) < n:
        fp = rng.getrandbits(128)
        if fp and fp not in seen:
            seen.add(fp)
            out.append(fp)
    return out


class TestBasics:
    def test_add_contains_len(self):
        s = FingerprintSet()
        values = fps(2000)
        for fp in values:
            assert fp not in s
            assert s.add(fp)
            assert fp in s
        assert len(s) == len(values)
        for fp in values:
            assert not s.add(fp)  # idempotent
        assert len(s) == len(values)

    def test_absent_values(self):
        s = FingerprintSet()
        present = fps(500, seed=1)
        absent = [fp for fp in fps(500, seed=2) if fp not in set(present)]
        for fp in present:
            s.add(fp)
        for fp in absent:
            assert fp not in s

    def test_grows_past_initial_capacity(self):
        s = FingerprintSet(capacity=64)
        values = fps(10_000, seed=3)
        for fp in values:
            s.add(fp)
        assert len(s) == len(values)
        assert s.capacity > 64
        assert set(s) == set(values)

    def test_iteration_yields_each_once(self):
        s = FingerprintSet()
        values = fps(333, seed=4)
        for fp in values:
            s.add(fp)
        assert sorted(s) == sorted(values)

    def test_rejects_zero_and_out_of_range(self):
        s = FingerprintSet()
        for bad in (0, -1, 1 << 128):
            with pytest.raises(ValueError):
                s.add(bad)

    def test_adversarial_same_slot_probing(self):
        # Values colliding on the initial probe slot must chain, not lose
        # each other.
        s = FingerprintSet(capacity=64)
        values = [(i << 64) | 5 for i in range(1, 40)]  # same low bits
        for fp in values:
            s.add(fp)
        for fp in values:
            assert fp in s
        assert len(s) == len(values)


class TestPacking:
    def test_to_bytes_is_canonical(self):
        values = fps(100, seed=5)
        a = FingerprintSet(capacity=64)
        b = FingerprintSet(capacity=4096)
        for fp in values:
            a.add(fp)
        for fp in reversed(values):
            b.add(fp)
        # Same contents => same bytes, regardless of capacity and
        # insertion order.
        assert a.to_bytes() == b.to_bytes()
        assert len(a.to_bytes()) == 16 * len(values)

    def test_from_packed_round_trip(self):
        s = FingerprintSet()
        for fp in fps(777, seed=6):
            s.add(fp)
        restored = FingerprintSet.from_packed(s.to_bytes())
        assert len(restored) == len(s)
        assert set(restored) == set(s)
        assert restored.to_bytes() == s.to_bytes()

    def test_from_packed_rejects_ragged_input(self):
        with pytest.raises(ValueError):
            FingerprintSet.from_packed(b"\x01" * 17)


class TestFixedBuffers:
    def test_attach_and_fill(self):
        values = fps(1000, seed=7)
        buf = bytearray(FingerprintSet.buffer_bytes(len(values)))
        s = FingerprintSet.attach(buf, clear=True)
        assert s.fixed
        for fp in values:
            s.add(fp)
        assert len(s) == len(values)
        for fp in values:
            assert fp in s

    def test_reattach_sees_contents(self):
        # A second attachment to the same region (what a fork-shared
        # SharedMemory view amounts to) must see the first one's writes.
        values = fps(300, seed=8)
        buf = bytearray(FingerprintSet.buffer_bytes(len(values)))
        writer = FingerprintSet.attach(buf, clear=True)
        for fp in values:
            writer.add(fp)
        reader = FingerprintSet.attach(buf)
        assert len(reader) == len(values)
        assert all(fp in reader for fp in values)

    def test_fixed_buffer_overflow_raises(self):
        buf = bytearray(64 * 16)
        s = FingerprintSet.attach(buf, clear=True)
        with pytest.raises(OverflowError):
            for fp in fps(64, seed=9):
                s.add(fp)

    def test_attach_validates_geometry(self):
        with pytest.raises(ValueError):
            FingerprintSet.attach(bytearray(100))  # not a multiple of 16
        with pytest.raises(ValueError):
            FingerprintSet.attach(bytearray(48))  # 3 slots: not a power of 2

    def test_buffer_bytes_leaves_load_headroom(self):
        for expected in (1, 10, 1000, 500_000):
            nbytes = FingerprintSet.buffer_bytes(expected)
            capacity = nbytes // 16
            assert capacity & (capacity - 1) == 0
            # expected entries stay within the 2/3 load bound.
            assert expected * 3 <= capacity * 2
