"""Tests for symmetry reduction in the model checker."""

import pytest

from repro.core import (
    PullOk,
    ScriptedOracle,
    AdoreMachine,
)
from repro.mc import Explorer, OpBudget
from repro.mc.symmetry import canonical_key, serialize_state, symmetry_group
from repro.schemes import RaftSingleNodeScheme

NODES = frozenset({1, 2, 3})
SCHEME = RaftSingleNodeScheme()


class TestGroup:
    def test_full_group_size(self):
        assert len(symmetry_group([1, 2, 3])) == 6
        assert len(symmetry_group([1, 2, 3, 4])) == 24

    def test_identity_always_included(self):
        group = symmetry_group([1, 2, 3])
        assert {1: 1, 2: 2, 3: 3} in group

    def test_fixed_set_constrains(self):
        group = symmetry_group([1, 2, 3, 4], fixed_sets=[frozenset({1, 2})])
        # Permutations fixing {1,2} setwise: 2! x 2! = 4.
        assert len(group) == 4
        for mapping in group:
            assert {mapping[1], mapping[2]} == {1, 2}


def run_once(leader, voters):
    oracle = ScriptedOracle([PullOk(group=frozenset(voters), time=1)])
    machine = AdoreMachine.create(NODES, SCHEME, oracle)
    machine.pull(leader)
    machine.invoke(leader, "m")
    return machine.state


class TestCanonicalKey:
    def test_renamed_runs_share_canonical_key(self):
        group = symmetry_group(NODES)
        state_a = run_once(1, {1, 2})
        state_b = run_once(2, {2, 3})  # the same run under 1->2, 2->3
        assert canonical_key(state_a, group) == canonical_key(state_b, group)

    def test_distinct_shapes_differ(self):
        group = symmetry_group(NODES)
        state_a = run_once(1, {1, 2})
        state_b = run_once(1, {1, 2, 3})  # different voter-set size
        assert canonical_key(state_a, group) != canonical_key(state_b, group)

    def test_identity_serialization_stable(self):
        state = run_once(1, {1, 2})
        identity = {n: n for n in NODES}
        assert serialize_state(state, identity) == serialize_state(
            state, identity
        )

    def test_non_set_configs_rejected(self):
        from repro.mc.symmetry import _map_conf

        with pytest.raises(TypeError):
            _map_conf(42, {1: 1})


class TestExplorerWithSymmetry:
    BUDGET = OpBudget(pulls=1, invokes=1, reconfigs=1, pushes=2)

    def test_same_verdict_fewer_states(self):
        plain = Explorer(SCHEME, NODES, budget=self.BUDGET).run()
        reduced = Explorer(
            SCHEME, NODES, budget=self.BUDGET, symmetry=True
        ).run()
        assert plain.safe and reduced.safe
        assert plain.exhausted and reduced.exhausted
        assert reduced.states_visited < plain.states_visited
        # The reduction factor is bounded by the group order.
        assert plain.states_visited <= 6 * reduced.states_visited

    def test_symmetry_still_finds_violations(self):
        from repro.mc.ablations import FIG4_BUDGET, FIG4_NODES

        hunt = Explorer(
            SCHEME,
            FIG4_NODES,
            callers=[1, 2],
            budget=FIG4_BUDGET,
            quorum_pulls_only=True,
            minimal_quorums_only=True,
            enforce_r3=False,
            invariants=["safety"],
            strategy="guided",
            symmetry=True,
            max_states=60_000,
        )
        result = hunt.run()
        assert not result.safe
        assert len(result.violations[0].trace) == 8
