"""Tests for symmetry reduction in the model checker."""

import pytest

from repro.core import (
    PullOk,
    ScriptedOracle,
    AdoreMachine,
)
from repro.core.state import initial_state
from repro.mc import Explorer, OpBudget
from repro.mc.symmetry import (
    SymmetryReducer,
    apply_renaming,
    canonical_key,
    serialize_state,
    symmetry_group,
)
from repro.schemes import RaftSingleNodeScheme

NODES = frozenset({1, 2, 3})
SCHEME = RaftSingleNodeScheme()


class TestGroup:
    def test_full_group_size(self):
        assert len(symmetry_group([1, 2, 3])) == 6
        assert len(symmetry_group([1, 2, 3, 4])) == 24

    def test_identity_always_included(self):
        group = symmetry_group([1, 2, 3])
        assert {1: 1, 2: 2, 3: 3} in group

    def test_fixed_set_constrains(self):
        group = symmetry_group([1, 2, 3, 4], fixed_sets=[frozenset({1, 2})])
        # Permutations fixing {1,2} setwise: 2! x 2! = 4.
        assert len(group) == 4
        for mapping in group:
            assert {mapping[1], mapping[2]} == {1, 2}


def run_once(leader, voters):
    oracle = ScriptedOracle([PullOk(group=frozenset(voters), time=1)])
    machine = AdoreMachine.create(NODES, SCHEME, oracle)
    machine.pull(leader)
    machine.invoke(leader, "m")
    return machine.state


class TestCanonicalKey:
    def test_renamed_runs_share_canonical_key(self):
        group = symmetry_group(NODES)
        state_a = run_once(1, {1, 2})
        state_b = run_once(2, {2, 3})  # the same run under 1->2, 2->3
        assert canonical_key(state_a, group) == canonical_key(state_b, group)

    def test_distinct_shapes_differ(self):
        group = symmetry_group(NODES)
        state_a = run_once(1, {1, 2})
        state_b = run_once(1, {1, 2, 3})  # different voter-set size
        assert canonical_key(state_a, group) != canonical_key(state_b, group)

    def test_identity_serialization_stable(self):
        state = run_once(1, {1, 2})
        identity = {n: n for n in NODES}
        assert serialize_state(state, identity) == serialize_state(
            state, identity
        )

    def test_non_set_configs_rejected(self):
        from repro.mc.symmetry import _map_conf

        with pytest.raises(TypeError):
            _map_conf(42, {1: 1})


class TestSymmetryReducer:
    def test_atoms_partition_by_fixed_sets(self):
        reducer = SymmetryReducer([1, 2, 3, 4], fixed_sets=[frozenset({1, 2})])
        assert reducer.atoms == ((1, 2), (3, 4))
        assert reducer.group_size() == 4  # 2! x 2!

    def test_partition_matches_full_sweep(self):
        # The acceptance property: the reducer induces exactly the
        # equivalence classes of min-over-the-whole-group, on a sample
        # of genuinely distinct reachable states.
        group = symmetry_group(NODES)
        reducer = SymmetryReducer(NODES)
        states = [
            run_once(leader, voters)
            for leader in NODES
            for voters in ({1, 2}, {2, 3}, {1, 3}, {1, 2, 3})
            if leader in voters
        ]
        legacy_classes = {}
        new_classes = {}
        for index, state in enumerate(states):
            legacy_classes.setdefault(canonical_key(state, group), set()).add(index)
            new_classes.setdefault(
                reducer.canonical_serialization(state), set()
            ).add(index)
        assert sorted(map(sorted, legacy_classes.values())) == sorted(
            map(sorted, new_classes.values())
        )

    def test_orbit_invariance(self):
        reducer = SymmetryReducer(NODES)
        state = run_once(1, {1, 2})
        fp = reducer.canonical_fingerprint(state)
        for mapping in symmetry_group(NODES):
            renamed = apply_renaming(state, mapping)
            assert reducer.canonical_fingerprint(renamed) == fp

    def test_no_sweep_on_distinct_signatures(self):
        # After one pull+invoke by node 1 with voters {1, 2}, the three
        # nodes play three different roles (caller, voter, bystander):
        # signatures are distinct, so canonicalization must resolve
        # without enumerating any permutations.
        reducer = SymmetryReducer(NODES)
        state = run_once(1, {1, 2})
        reducer.canonical_serialization(state)
        assert reducer.sweep_invocations == 0

    def test_sweep_only_on_ties(self):
        # The initial state is fully symmetric: every node is a config
        # member with time 0 and nothing else -- one big tie class, so
        # this is exactly the case that still needs a sweep.
        reducer = SymmetryReducer(NODES)
        reducer.canonical_serialization(initial_state(NODES, SCHEME))
        assert reducer.sweep_invocations == 1
        # ... while the asymmetric state still does not sweep.
        reducer.canonical_serialization(run_once(1, {1, 2}))
        assert reducer.sweep_invocations == 1

    def test_exploration_mostly_avoids_sweeps(self):
        # The point of the rework: on a real exploration the tie path
        # is the exception, not the rule.
        explorer = Explorer(
            SCHEME,
            NODES,
            budget=OpBudget(pulls=1, invokes=1, reconfigs=1, pushes=2),
            symmetry=True,
        )
        result = explorer.run()
        reducer = explorer._sym_reducer
        assert result.exhausted
        assert reducer.sweep_invocations < result.transitions / 2


class TestExplorerWithSymmetry:
    BUDGET = OpBudget(pulls=1, invokes=1, reconfigs=1, pushes=2)

    def test_same_verdict_fewer_states(self):
        plain = Explorer(SCHEME, NODES, budget=self.BUDGET).run()
        reduced = Explorer(
            SCHEME, NODES, budget=self.BUDGET, symmetry=True
        ).run()
        assert plain.safe and reduced.safe
        assert plain.exhausted and reduced.exhausted
        assert reduced.states_visited < plain.states_visited
        # The reduction factor is bounded by the group order.
        assert plain.states_visited <= 6 * reduced.states_visited

    def test_fingerprint_and_legacy_dedup_agree(self):
        # Orbit-fingerprint dedup and full-sweep exact dedup must carve
        # the state space identically.
        fp_mode = Explorer(
            SCHEME, NODES, budget=self.BUDGET, symmetry=True
        ).run()
        exact_mode = Explorer(
            SCHEME, NODES, budget=self.BUDGET, symmetry=True,
            fingerprints=False,
        ).run()
        assert (
            fp_mode.states_visited,
            fp_mode.transitions,
            fp_mode.safe,
            fp_mode.exhausted,
        ) == (
            exact_mode.states_visited,
            exact_mode.transitions,
            exact_mode.safe,
            exact_mode.exhausted,
        )

    def test_symmetry_still_finds_violations(self):
        from repro.mc.ablations import FIG4_BUDGET, FIG4_NODES

        hunt = Explorer(
            SCHEME,
            FIG4_NODES,
            callers=[1, 2],
            budget=FIG4_BUDGET,
            quorum_pulls_only=True,
            minimal_quorums_only=True,
            enforce_r3=False,
            invariants=["safety"],
            strategy="guided",
            symmetry=True,
            max_states=60_000,
        )
        result = hunt.run()
        assert not result.safe
        assert len(result.violations[0].trace) == 8
