"""Seed-engine vs optimized-engine parity (ISSUE 5 acceptance).

The optimization rebuilt the model checker's hot path -- interned
hash-consed trees, incremental 128-bit fingerprints, compact visited
set, orbit-based symmetry -- **without changing what is checked**.
These tests pin that claim against the frozen seed engine vendored at
:mod:`repro.mc.legacy`: identical state count, transition count,
verdict, and first violation (trace and messages), on the intact
configuration and all four ablations, sequentially and through the
parallel engine with 1 and 4 workers.

Configurations are scaled-down versions of the real experiments
(smaller budgets / state caps applied identically to both engines) so
the whole module stays test-suite fast; the full-size runs live in
``benchmarks/test_mc_throughput.py`` and the ablation benchmarks.
"""

import pytest

from repro.mc import ParallelExplorer, legacy
from repro.mc.ablations import (
    insert_btw_explorer,
    overlap_explorer,
    r2_explorer,
    r3_explorer,
    verify_intact_explorer,
)
from repro.mc.explorer import OpBudget

SMALL_INTACT = dict(budget=OpBudget(pulls=2, invokes=1, reconfigs=1, pushes=2))

#: (name, seed factory, new factory, overrides applied to both).
CONFIGS = [
    (
        "intact",
        legacy.verify_intact_explorer,
        verify_intact_explorer,
        SMALL_INTACT,
    ),
    (
        "r3",
        legacy.r3_explorer,
        r3_explorer,
        {},
    ),
    (
        "r2",
        legacy.r2_explorer,
        r2_explorer,
        # Capped: the full hunt visits >100k states.  Both engines get
        # the same cap, so the truncated searches must still agree
        # state for state.
        dict(max_states=4_000),
    ),
    (
        "overlap",
        legacy.overlap_explorer,
        overlap_explorer,
        dict(max_states=4_000),
    ),
    (
        "insert_btw",
        legacy.insert_btw_explorer,
        insert_btw_explorer,
        {},
    ),
]


def signature(result):
    """Everything the acceptance criterion compares."""
    first = None
    if result.violations:
        violation = result.violations[0]
        first = (
            tuple(repr(op) for op in violation.trace),
            tuple(violation.report.all_violations()),
        )
    return {
        "states": result.states_visited,
        "transitions": result.transitions,
        "verdict": result.safe,
        "violations": len(result.violations),
        "first_violation": first,
    }


@pytest.fixture(scope="module")
def seed_signatures():
    """Each seed-engine configuration, run once per module."""
    return {
        name: signature(seed_factory(**overrides).run())
        for name, seed_factory, _, overrides in CONFIGS
    }


@pytest.mark.parametrize(
    "name,new_factory,overrides",
    [(name, new, overrides) for name, _, new, overrides in CONFIGS],
    ids=[name for name, *_ in CONFIGS],
)
class TestSequentialParity:
    def test_matches_seed_engine(
        self, seed_signatures, name, new_factory, overrides
    ):
        result = new_factory(**overrides).run()
        assert signature(result) == seed_signatures[name]

    def test_legacy_dedup_mode_matches_seed_engine(
        self, seed_signatures, name, new_factory, overrides
    ):
        # fingerprints=False keeps the optimized core but dedups by
        # exact state equality, exactly like the seed engine -- the
        # collision canary for fingerprint mode.
        result = new_factory(fingerprints=False, **overrides).run()
        assert signature(result) == seed_signatures[name]


BFS_CONFIGS = [
    (
        "intact",
        legacy.verify_intact_explorer,
        verify_intact_explorer,
        SMALL_INTACT,
    ),
    (
        "r3-bfs",
        legacy.r3_explorer,
        r3_explorer,
        dict(strategy="bfs", max_states=4_000),
    ),
    (
        "insert_btw",
        legacy.insert_btw_explorer,
        insert_btw_explorer,
        {},  # already bfs; finds a real violation
    ),
]


@pytest.fixture(scope="module")
def bfs_seed_signatures():
    return {
        name: signature(seed_factory(**overrides).run())
        for name, seed_factory, _, overrides in BFS_CONFIGS
    }


class TestParallelParity:
    """The parallel engine (bfs only) against the sequential seed
    engine on the same configurations."""

    @pytest.mark.parametrize("workers", [1, 4])
    @pytest.mark.parametrize(
        "name,new_factory,overrides",
        [(name, new, overrides) for name, _, new, overrides in BFS_CONFIGS],
        ids=[name for name, *_ in BFS_CONFIGS],
    )
    def test_matches_seed_engine(
        self, bfs_seed_signatures, name, new_factory, overrides, workers
    ):
        result = ParallelExplorer(
            new_factory(**overrides), workers=workers
        ).run()
        assert signature(result) == bfs_seed_signatures[name]
