"""Tests for the bounded model checker and its ablations."""

import pytest

from repro.cado import cado_explorer
from repro.mc import (
    Explorer,
    OpBudget,
    ablate_insert_btw,
    jump_reconfig_candidates,
    set_reconfig_candidates,
    verify_intact,
)
from repro.schemes import RaftSingleNodeScheme

NODES3 = frozenset({1, 2, 3})
SCHEME = RaftSingleNodeScheme()


class TestOpBudget:
    def test_spend(self):
        budget = OpBudget(pulls=1, invokes=0, reconfigs=2, pushes=1)
        assert budget.spend("invoke") is None
        spent = budget.spend("pull")
        assert spent.pulls == 0
        assert spent.reconfigs == 2
        assert spent.spend("pull") is None

    def test_push_field_name(self):
        budget = OpBudget(pushes=1)
        assert budget.spend("push").pushes == 0

    def test_total(self):
        assert OpBudget(1, 2, 3, 4).total() == 10


class TestReconfigCandidates:
    def test_set_candidates_single_changes(self):
        gen = set_reconfig_candidates([1, 2, 3, 4])
        candidates = set(gen(None, 1, frozenset({1, 2})))
        assert frozenset({1, 2, 3}) in candidates
        assert frozenset({1, 2, 4}) in candidates
        assert frozenset({1}) in candidates
        assert frozenset({2}) in candidates
        assert frozenset({1, 2, 3, 4}) not in candidates

    def test_set_candidates_never_empty_config(self):
        gen = set_reconfig_candidates([1, 2])
        candidates = set(gen(None, 1, frozenset({1})))
        assert frozenset() not in candidates

    def test_jump_candidates_cover_all_subsets(self):
        gen = jump_reconfig_candidates([1, 2, 3])
        candidates = set(gen(None, 1, frozenset({1})))
        assert len(candidates) == 6  # all non-empty subsets minus itself


class TestExhaustiveVerification:
    def test_small_exploration_is_safe_and_exhaustive(self):
        explorer = Explorer(
            SCHEME,
            NODES3,
            budget=OpBudget(pulls=1, invokes=1, reconfigs=0, pushes=1),
        )
        result = explorer.run()
        assert result.safe
        assert result.exhausted
        assert result.states_visited > 10

    def test_verify_intact_small(self):
        result = verify_intact(
            budget=OpBudget(pulls=1, invokes=2, reconfigs=1, pushes=2),
            conf0=NODES3,
        )
        assert result.safe, result.summary()
        assert result.exhausted

    def test_reconfig_moves_appear_when_legal(self):
        result = verify_intact(
            budget=OpBudget(pulls=1, invokes=1, reconfigs=1, pushes=2),
            conf0=NODES3,
        )
        # With R3 satisfiable (invoke + push first), reconfiguration
        # transitions exist and are explored without violations.
        assert result.safe
        assert result.transitions > result.states_visited / 2

    def test_cado_explorer_has_no_reconfig_moves(self):
        explorer = cado_explorer(NODES3, budget=OpBudget(1, 1, 5, 1))
        result = explorer.run()
        assert result.safe
        for violation in result.violations:
            raise AssertionError(violation.describe())
        # No state in a CADO exploration has an RCache.
        explorer2 = cado_explorer(NODES3, budget=OpBudget(1, 1, 5, 1))
        for _, state in explorer2.successors(
            __import__("repro.core", fromlist=["initial_state"]).initial_state(
                NODES3, explorer2.scheme
            )
        ):
            assert state.tree.rcaches() == []


class TestAblations:
    def test_insert_btw_ablation_finds_violation(self):
        result = ablate_insert_btw()
        assert not result.safe
        ops = [op for op, _, _ in result.violations[0].trace]
        assert ops.count("push") == 2

    def test_no_r3_violation_found_quickly(self):
        # A scaled-down inline version of ablate_r3 (the full hunt runs
        # in the benchmark suite): with the exact Fig. 4 budget and the
        # guided strategy the violation is found within a small cap.
        from repro.mc.ablations import FIG4_BUDGET, FIG4_NODES

        explorer = Explorer(
            SCHEME,
            FIG4_NODES,
            callers=[1, 2],
            budget=FIG4_BUDGET,
            quorum_pulls_only=True,
            minimal_quorums_only=True,
            enforce_r3=False,
            invariants=["safety"],
            strategy="guided",
            max_states=30_000,
        )
        result = explorer.run()
        assert not result.safe
        violation = result.violations[0]
        assert len(violation.trace) == 8
        assert "different branches" in violation.report.safety[0]

    def test_intact_model_is_safe_on_the_same_budget(self):
        # The other half of the Fig. 4 claim: with R2+R3 on, the same
        # schedule class has no violation (exhaustive).
        from repro.mc.ablations import FIG4_BUDGET, FIG4_NODES

        explorer = Explorer(
            SCHEME,
            FIG4_NODES,
            callers=[1, 2],
            budget=FIG4_BUDGET,
            quorum_pulls_only=True,
            minimal_quorums_only=True,
            invariants=["safety"],
            max_states=400_000,
        )
        result = explorer.run()
        assert result.safe, result.violations[0].describe()


class TestViolationReporting:
    def test_describe_contains_schedule_and_tree(self):
        result = ablate_insert_btw()
        text = result.violations[0].describe()
        assert "schedule:" in text
        assert "tree:" in text
        assert "violations:" in text

    def test_summary_format(self):
        result = ablate_insert_btw()
        assert "VIOLATION" in result.summary()

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            Explorer(SCHEME, NODES3, strategy="dfs")

    def test_unknown_invariant_rejected(self):
        # Validation happens at construction so a bad label fails in the
        # submitting process, not inside a pool worker.
        with pytest.raises(ValueError):
            Explorer(SCHEME, NODES3, invariants=["bogus"])
