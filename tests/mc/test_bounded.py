"""Bounded-memory engine parity (ISSUE 10 acceptance).

Cache eviction and disk spilling only discard *recomputable* memoized
state (interned trees/caches, memo scratch) or move *exact* data
structures to disk (the visited table, the frontier).  Therefore every
wipe policy and the spill mode must reproduce the seed engine's answer
bit for bit: same state count, same transition count, same verdict,
same first violation -- on the intact configuration and all four
ablations, sequentially and through the parallel engine.

Caps here are deliberately tiny so every run actually flushes and
spills many times; the unbounded runs in ``tests/mc/test_parity.py``
stay the baseline for the unbounded engine.
"""

import pytest

from repro.core import cachemgr
from repro.mc import ParallelExplorer, legacy
from repro.mc.ablations import (
    insert_btw_explorer,
    overlap_explorer,
    r2_explorer,
    r3_explorer,
    verify_intact_explorer,
)
from repro.mc.explorer import OpBudget

SMALL_INTACT = dict(budget=OpBudget(pulls=2, invokes=1, reconfigs=1, pushes=2))

#: (name, seed factory, new factory, overrides applied to both).
CONFIGS = [
    ("intact", legacy.verify_intact_explorer, verify_intact_explorer, SMALL_INTACT),
    ("r3", legacy.r3_explorer, r3_explorer, {}),
    ("r2", legacy.r2_explorer, r2_explorer, dict(max_states=4_000)),
    ("overlap", legacy.overlap_explorer, overlap_explorer, dict(max_states=4_000)),
    ("insert_btw", legacy.insert_btw_explorer, insert_btw_explorer, {}),
]

#: Tiny bounds: every configuration overflows these many times over.
TREE_CAP = 512
SPILL_WINDOW = 64


def signature(result):
    first = None
    if result.violations:
        violation = result.violations[0]
        first = (
            tuple(repr(op) for op in violation.trace),
            tuple(violation.report.all_violations()),
        )
    return {
        "states": result.states_visited,
        "transitions": result.transitions,
        "verdict": result.safe,
        "violations": len(result.violations),
        "first_violation": first,
    }


@pytest.fixture(scope="module")
def seed_signatures():
    return {
        name: signature(seed_factory(**overrides).run())
        for name, seed_factory, _, overrides in CONFIGS
    }


@pytest.mark.parametrize(
    "name,new_factory,overrides",
    [(name, new, overrides) for name, _, new, overrides in CONFIGS],
    ids=[name for name, *_ in CONFIGS],
)
class TestWipePolicyParity:
    """Every eviction policy, tiny cap, no spill: exact seed parity."""

    @pytest.mark.parametrize("wipe", sorted(cachemgr.WIPE_POLICIES))
    def test_matches_seed_engine(
        self, seed_signatures, name, new_factory, overrides, wipe
    ):
        with cachemgr.bounded(tree_cap=TREE_CAP, wipe=wipe):
            result = new_factory(**overrides).run()
            flushes = cachemgr.stats()["tree_interns"]["flushes"]
        assert signature(result) == seed_signatures[name]
        assert flushes > 0, "cap never hit: the test is not exercising eviction"


@pytest.mark.parametrize(
    "name,new_factory,overrides",
    [(name, new, overrides) for name, _, new, overrides in CONFIGS],
    ids=[name for name, *_ in CONFIGS],
)
class TestSpillParity:
    """Disk-spilled frontier + visited set, sequential engine."""

    def test_matches_seed_engine(
        self, seed_signatures, name, new_factory, overrides, tmp_path
    ):
        explorer = new_factory(
            spill_dir=str(tmp_path), spill_window=SPILL_WINDOW, **overrides
        )
        result = explorer.run()
        assert signature(result) == seed_signatures[name]
        # The engine cleans its working spill files up after itself.
        assert not list(tmp_path.iterdir())


BFS_CONFIGS = [
    ("intact", legacy.verify_intact_explorer, verify_intact_explorer, SMALL_INTACT),
    (
        "r3-bfs",
        legacy.r3_explorer,
        r3_explorer,
        dict(strategy="bfs", max_states=4_000),
    ),
    ("insert_btw", legacy.insert_btw_explorer, insert_btw_explorer, {}),
]


@pytest.fixture(scope="module")
def bfs_seed_signatures():
    return {
        name: signature(seed_factory(**overrides).run())
        for name, seed_factory, _, overrides in BFS_CONFIGS
    }


class TestParallelSpillParity:
    """Spilled frontier/visited through the parallel engine: the
    fork-shared mmap visited table and the windowed level merge must
    not change the answer for any worker count."""

    @pytest.mark.parametrize("workers", [1, 4])
    @pytest.mark.parametrize(
        "name,new_factory,overrides",
        [(name, new, overrides) for name, _, new, overrides in BFS_CONFIGS],
        ids=[name for name, *_ in BFS_CONFIGS],
    )
    def test_matches_seed_engine(
        self, bfs_seed_signatures, name, new_factory, overrides, workers, tmp_path
    ):
        explorer = new_factory(
            spill_dir=str(tmp_path), spill_window=SPILL_WINDOW, **overrides
        )
        with cachemgr.bounded(
            tree_cap=TREE_CAP, wipe=cachemgr.WIPE_SUBNODES
        ):
            result = ParallelExplorer(explorer, workers=workers).run()
        assert signature(result) == bfs_seed_signatures[name]
        assert not list(tmp_path.iterdir())


class TestBoundedCli:
    """The CI harness module itself (one in-process invocation)."""

    def test_small_budget_parity(self, capsys):
        import json
        import resource

        from repro.mc import bounded_cli

        # --limit-mb 0: the pytest process's address space is already
        # larger than a meaningful cap; the CI job runs the module
        # standalone where the rlimit is real.
        saved = resource.getrlimit(resource.RLIMIT_AS)
        try:
            code = bounded_cli.main(
                ["--tree-cap", "512", "--window", "128", "--limit-mb", "0"]
            )
        finally:
            resource.setrlimit(resource.RLIMIT_AS, saved)
        summary = json.loads(capsys.readouterr().out)
        assert code == 0
        assert summary["parity"] is True
        assert summary["cache_flushes"] > 0
