"""Shared helpers for the test suite.

``build_tree`` constructs arbitrary cache trees directly (bypassing the
semantics) so the invariant checkers can be tested on both legal and
deliberately illegal shapes.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core import (
    AdoreState,
    Cache,
    CacheTree,
    CCache,
    Cid,
    ECache,
    MCache,
    RCache,
    TimeMap,
    TreeEntry,
)
from repro.core.tree import ROOT_CID

NODES3 = frozenset({1, 2, 3})
NODES4 = frozenset({1, 2, 3, 4})
NODES5 = frozenset({1, 2, 3, 4, 5})


def root(conf=NODES3) -> CCache:
    """A root CCache at time 0 supported by all of ``conf``."""
    return CCache(caller=0, time=0, vrsn=0, conf=conf, voters=frozenset(conf))


def ec(caller, time, conf=NODES3, voters=None) -> ECache:
    return ECache(
        caller=caller,
        time=time,
        vrsn=0,
        conf=conf,
        voters=frozenset(voters) if voters is not None else frozenset(conf),
    )


def mc(caller, time, vrsn, conf=NODES3, method="m") -> MCache:
    return MCache(caller=caller, time=time, vrsn=vrsn, conf=conf, method=method)


def rc(caller, time, vrsn, conf=NODES3) -> RCache:
    return RCache(caller=caller, time=time, vrsn=vrsn, conf=conf)


def cc(caller, time, vrsn, conf=NODES3, voters=None) -> CCache:
    return CCache(
        caller=caller,
        time=time,
        vrsn=vrsn,
        conf=conf,
        voters=frozenset(voters) if voters is not None else frozenset(conf),
    )


def build_tree(spec: Dict[Cid, Tuple[Optional[Cid], Cache]]) -> CacheTree:
    """Build a tree from ``{cid: (parent_cid, cache)}`` directly.

    ``spec`` need not include the root; if absent, a default 3-node root
    is added at cid 0.
    """
    entries = {cid: TreeEntry(parent, cache) for cid, (parent, cache) in spec.items()}
    if ROOT_CID not in entries:
        entries[ROOT_CID] = TreeEntry(None, root())
    return CacheTree(entries)


def state_of(tree: CacheTree, times: Optional[Dict[int, int]] = None) -> AdoreState:
    """Wrap a tree into an :class:`AdoreState` with the given time map."""
    return AdoreState(tree, TimeMap(times or {}))
