"""The network-based specification under non-default schemes.

Section 7: "The protocol is parameterized by the same isQuorum and R1⁺
predicates as Adore, which means the refinement proof actually holds
for a large family of protocols with different reconfiguration
schemes."  These tests run complete membership changes at the network
level under joint consensus and primary-backup, and drive the joint
case through the lockstep refinement checker.
"""

from repro.raft import LEADER, RaftSystem
from repro.refinement import SimulationChecker
from repro.schemes import (
    JointConfig,
    JointConsensusScheme,
    PrimaryBackupConfig,
    PrimaryBackupScheme,
)


class TestJointConsensusAtNetworkLevel:
    def test_full_two_hop_membership_change(self):
        scheme = JointConsensusScheme()
        old = JointConfig.stable({1, 2, 3})
        joint = JointConfig.transition({1, 2, 3}, {1, 4, 5})
        landed = JointConfig.stable({1, 4, 5})
        system = RaftSystem(old, scheme, extra_nodes={4, 5})

        system.elect(1)
        system.deliver_all()
        assert system.servers[1].role == LEADER
        system.invoke(1, "warmup")
        system.commit(1)
        system.deliver_all()

        # Hop 1: enter the joint configuration.
        ok, reason = system.reconfig(1, joint)
        assert ok, reason
        system.commit(1)
        system.deliver_all()
        # Committing under the joint config needs majorities of BOTH
        # halves; with everything delivered that holds.
        assert system.servers[1].commit_len == 2

        # Hop 2: leave to the new configuration.  R3 needs a committed
        # entry of the current term first -- the joint commit is one.
        ok, reason = system.reconfig(1, landed)
        assert ok, reason
        system.commit(1)
        system.deliver_all()
        assert system.servers[1].config() == landed
        system.invoke(1, "after")
        system.commit(1)
        system.deliver_all()
        system.commit(1)  # one more round propagates the commit index
        system.deliver_all()
        assert system.check_log_safety() == []
        # The new members carry the full history.
        assert len(system.servers[4].committed_log()) == 4

    def test_joint_commit_requires_both_majorities(self):
        scheme = JointConsensusScheme()
        old = JointConfig.stable({1, 2, 3})
        joint = JointConfig.transition({1, 2, 3}, {4, 5, 6})
        system = RaftSystem(old, scheme, extra_nodes={4, 5, 6})
        system.elect(1)
        system.deliver_all()
        system.invoke(1, "warmup")
        system.commit(1)
        system.deliver_all()
        assert system.reconfig(1, joint)[0]
        system.commit(1)
        # Deliver only to the old half: no commit progress for the
        # joint entry (needs a majority of {4,5,6} too).
        system.deliver_all(lambda m: m.to in {2, 3} or m.frm in {2, 3})
        assert system.servers[1].commit_len == 1
        # Now let the new half in: commits.
        system.commit(1)
        system.deliver_all()
        assert system.servers[1].commit_len == 2

    def test_joint_change_through_refinement_checker(self):
        scheme = JointConsensusScheme()
        old = JointConfig.stable({1, 2, 3})
        joint = JointConfig.transition({1, 2, 3}, {1, 2, 4})
        landed = JointConfig.stable({1, 2, 4})
        sim = SimulationChecker(old, scheme, extra_nodes=[4])
        sim.elect(1, [2, 3])
        sim.invoke(1, "warmup")
        sim.commit(1, [2, 3])
        sim.reconfig(1, joint)
        sim.commit(1, [2, 3, 4])
        sim.reconfig(1, landed)
        sim.commit(1, [2, 3, 4])
        sim.invoke(1, "after")
        sim.commit(1, [2, 4])
        assert sim.ok, sim.report()


class TestPrimaryBackupAtNetworkLevel:
    def test_backup_set_changes_freely(self):
        scheme = PrimaryBackupScheme()
        conf0 = PrimaryBackupConfig.of(1, {2, 3})
        system = RaftSystem(conf0, scheme, extra_nodes={4, 5})
        system.elect(1)
        system.deliver_all()
        assert system.servers[1].role == LEADER
        system.invoke(1, "a")
        system.commit(1)
        # A quorum is any set containing the primary: the leader's own
        # ack suffices, even before any follower answers.
        assert system.servers[1].commit_len == 1, system.describe()
        system.deliver_all()
        ok, reason = system.reconfig(1, PrimaryBackupConfig.of(1, {4, 5}))
        assert ok, reason
        system.commit(1)
        system.deliver_all()
        assert system.servers[4].log == system.servers[1].log
        assert system.check_log_safety() == []

    def test_backups_cannot_lead(self):
        scheme = PrimaryBackupScheme()
        conf0 = PrimaryBackupConfig.of(1, {2, 3})
        system = RaftSystem(conf0, scheme)
        system.elect(2)
        system.deliver_all()
        # Node 2's votes never include the primary's... they may -- but
        # a quorum must CONTAIN the primary; node 1 voting for node 2
        # does make {1, 2} a quorum.  Without node 1's vote it fails.
        system2 = RaftSystem(conf0, scheme)
        system2.elect(2)
        system2.deliver_all(lambda m: 1 not in (m.frm, m.to))
        assert system2.servers[2].role != LEADER
