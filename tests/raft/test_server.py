"""Unit tests for the Raft server handlers."""


from repro.raft import (
    CANDIDATE,
    CommitAck,
    CommitReq,
    ElectAck,
    ElectReq,
    LEADER,
    LogEntry,
    Server,
    config_of,
    log_order_key,
)
from repro.schemes import RaftSingleNodeScheme

CONF = frozenset({1, 2, 3})
SCHEME = RaftSingleNodeScheme()


def make_server(nid=1, **kwargs):
    return Server(nid=nid, conf0=CONF, **kwargs)


def entry(time, vrsn, payload="m", is_config=False):
    return LogEntry(time=time, vrsn=vrsn, payload=payload, is_config=is_config)


class TestConfigOf:
    def test_defaults_to_conf0(self):
        assert config_of((), CONF) == CONF

    def test_latest_config_entry_wins(self):
        log = (
            entry(1, 1),
            entry(1, 2, frozenset({1, 2}), is_config=True),
            entry(2, 1),
        )
        assert config_of(log, CONF) == frozenset({1, 2})

    def test_uncommitted_config_takes_effect(self):
        # Hot reconfiguration: position in the log is irrelevant.
        server = make_server()
        server.log = (entry(1, 1, frozenset({1, 2}), is_config=True),)
        assert server.config() == frozenset({1, 2})


class TestLogOrder:
    def test_term_dominates_length(self):
        newer = (entry(2, 1),)
        longer = (entry(1, 1), entry(1, 2), entry(1, 3))
        assert log_order_key(newer) > log_order_key(longer)

    def test_length_breaks_term_ties(self):
        assert log_order_key((entry(1, 1), entry(1, 2))) > log_order_key(
            (entry(1, 1),)
        )

    def test_empty_log_is_least(self):
        assert log_order_key(()) == (0, 0)


class TestElection:
    def test_start_election_bumps_time_and_broadcasts(self):
        server = make_server(1)
        msgs = server.start_election(SCHEME)
        assert server.time == 1
        assert server.role == CANDIDATE
        assert {m.to for m in msgs} == {2, 3}
        assert all(isinstance(m, ElectReq) for m in msgs)

    def test_singleton_config_wins_immediately(self):
        server = make_server(1)
        server.log = (entry(0, 1, frozenset({1}), is_config=True),)
        server.start_election(SCHEME)
        assert server.role == LEADER

    def test_voter_grants_for_up_to_date_log(self):
        voter = make_server(2)
        req = ElectReq(frm=1, to=2, time=1, log=())
        (ack,) = voter.handle(req, SCHEME)
        assert isinstance(ack, ElectAck)
        assert ack.granted
        assert voter.time == 1

    def test_voter_denies_stale_log_but_bumps_time(self):
        voter = make_server(2)
        voter.log = (entry(1, 1),)
        req = ElectReq(frm=1, to=2, time=5, log=())
        (ack,) = voter.handle(req, SCHEME)
        assert not ack.granted
        assert voter.time == 5

    def test_voter_ignores_stale_term(self):
        voter = make_server(2)
        voter.time = 7
        req = ElectReq(frm=1, to=2, time=7, log=())
        assert not voter.would_accept(req)
        assert voter.handle(req, SCHEME) == []

    def test_candidate_wins_with_quorum(self):
        candidate = make_server(1)
        candidate.start_election(SCHEME)
        ack = ElectAck(frm=2, to=1, time=1, granted=True)
        candidate.handle(ack, SCHEME)
        assert candidate.role == LEADER

    def test_candidate_ignores_acks_for_other_terms(self):
        candidate = make_server(1)
        candidate.start_election(SCHEME)
        stale = ElectAck(frm=2, to=1, time=0, granted=True)
        assert not candidate.would_accept(stale)

    def test_votes_counted_against_own_hot_config(self):
        # The crux of the Fig. 4 bug: the candidate's own (possibly
        # uncommitted) configuration decides what a quorum is.
        candidate = make_server(1)
        candidate.log = (entry(1, 1, frozenset({1, 2}), is_config=True),)
        candidate.time = 1
        candidate.start_election(SCHEME)
        ack = ElectAck(frm=2, to=1, time=2, granted=True)
        candidate.handle(ack, SCHEME)
        assert candidate.role == LEADER  # {1,2} is a majority of {1,2}


class TestInvokeAndReconfig:
    def leader(self):
        server = make_server(1)
        server.start_election(SCHEME)
        server.handle(ElectAck(frm=2, to=1, time=1, granted=True), SCHEME)
        assert server.role == LEADER
        return server

    def test_invoke_appends_with_version(self):
        server = self.leader()
        assert server.invoke("a")
        assert server.invoke("b")
        assert [(e.time, e.vrsn) for e in server.log] == [(1, 1), (1, 2)]

    def test_invoke_refused_for_followers(self):
        server = make_server(1)
        assert not server.invoke("a")

    def test_reconfig_requires_r3(self):
        server = self.leader()
        ok, reason = server.reconfig(frozenset({1, 2}), SCHEME)
        assert not ok and reason == "r3-denied"

    def test_reconfig_after_commit(self):
        server = self.leader()
        server.invoke("a")
        server.commit_len = 1  # as if a quorum acked
        ok, reason = server.reconfig(frozenset({1, 2}), SCHEME)
        assert ok
        assert server.config() == frozenset({1, 2})

    def test_reconfig_r2_blocks_stacking(self):
        server = self.leader()
        server.invoke("a")
        server.commit_len = 1
        assert server.reconfig(frozenset({1, 2}), SCHEME)[0]
        ok, reason = server.reconfig(frozenset({1, 2, 3}), SCHEME)
        assert not ok and reason == "r2-denied"

    def test_reconfig_r1_denied(self):
        server = self.leader()
        server.invoke("a")
        server.commit_len = 1
        ok, reason = server.reconfig(frozenset({5, 6}), SCHEME)
        assert not ok and reason == "r1-denied"

    def test_ablation_switches(self):
        server = self.leader()
        ok, reason = server.reconfig(
            frozenset({1, 2}), SCHEME, enforce_r3=False
        )
        assert ok


class TestCommit:
    def cluster_pair(self):
        leader = make_server(1)
        leader.start_election(SCHEME)
        leader.handle(ElectAck(frm=2, to=1, time=1, granted=True), SCHEME)
        follower = make_server(2)
        follower.time = 1
        return leader, follower

    def test_broadcast_goes_to_current_config(self):
        leader, _ = self.cluster_pair()
        leader.invoke("a")
        msgs = leader.broadcast_commit(SCHEME)
        assert {m.to for m in msgs} == {2, 3}

    def test_follower_adopts_leader_log(self):
        leader, follower = self.cluster_pair()
        leader.invoke("a")
        (req,) = [m for m in leader.broadcast_commit(SCHEME) if m.to == 2]
        (ack,) = follower.handle(req, SCHEME)
        assert follower.log == leader.log
        assert isinstance(ack, CommitAck)
        assert ack.acked_len == 1

    def test_quorum_acks_advance_commit(self):
        leader, follower = self.cluster_pair()
        leader.invoke("a")
        (req,) = [m for m in leader.broadcast_commit(SCHEME) if m.to == 2]
        (ack,) = follower.handle(req, SCHEME)
        leader.handle(ack, SCHEME)
        assert leader.commit_len == 1

    def test_commit_only_counts_current_term_entries(self):
        leader, _ = self.cluster_pair()
        # An entry from an older term cannot commit by counting alone.
        leader.log = (entry(0, 1),)
        leader.acked = {1: 1, 2: 1, 3: 1}
        leader._advance_commit(SCHEME)
        assert leader.commit_len == 0

    def test_follower_rejects_regressing_log(self):
        _, follower = self.cluster_pair()
        follower.log = (entry(1, 1), entry(1, 2))
        req = CommitReq(frm=1, to=2, time=1, log=(entry(1, 1),), commit_len=0)
        assert not follower.would_accept(req)

    def test_commit_len_propagates(self):
        leader, follower = self.cluster_pair()
        leader.invoke("a")
        leader.commit_len = 1
        (req,) = [m for m in leader.broadcast_commit(SCHEME) if m.to == 2]
        follower.handle(req, SCHEME)
        assert follower.commit_len == 1
