"""Property-based tests of the network-based specification.

Randomized asynchronous schedules -- interleaved elections, commands,
reconfiguration attempts, commit broadcasts, and message deliveries in
arbitrary order with arbitrary loss -- must never produce divergent
committed prefixes, and replays must be deterministic.
"""

from hypothesis import given, settings, strategies as st

from repro.raft import RaftSystem
from repro.schemes import RaftSingleNodeScheme

UNIVERSE = [1, 2, 3, 4]
SCHEME = RaftSingleNodeScheme()
CONF0 = frozenset({1, 2, 3})


def random_schedule(data, steps, enforce_r3=True):
    system = RaftSystem(CONF0, SCHEME, enforce_r3=enforce_r3,
                        extra_nodes=UNIVERSE)
    counter = 0
    for step in range(steps):
        op = data.draw(
            st.sampled_from(
                ["elect", "invoke", "reconfig", "commit", "deliver",
                 "deliver", "deliver"]
            ),
            label=f"op{step}",
        )
        nid = data.draw(st.sampled_from(UNIVERSE), label=f"nid{step}")
        if op == "elect":
            system.elect(nid)
        elif op == "invoke":
            counter += 1
            system.invoke(nid, f"m{counter}")
        elif op == "reconfig":
            conf = frozenset(system.servers[nid].config())
            options = [conf | {n} for n in UNIVERSE if n not in conf]
            options += [conf - {n} for n in conf if len(conf) > 1]
            system.reconfig(nid, data.draw(st.sampled_from(options),
                                           label=f"conf{step}"))
        elif op == "commit":
            system.commit(nid)
        else:
            pending = list(system.network.in_flight())
            if pending:
                msg = data.draw(st.sampled_from(pending), label=f"msg{step}")
                system.deliver(msg)
    return system


@settings(max_examples=120, deadline=None)
@given(st.data())
def test_async_schedules_preserve_log_safety(data):
    steps = data.draw(st.integers(min_value=5, max_value=30), label="steps")
    system = random_schedule(data, steps)
    assert system.check_log_safety() == [], system.describe()


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_commit_lengths_are_monotone(data):
    system = RaftSystem(CONF0, SCHEME, extra_nodes=UNIVERSE)
    counter = 0
    previous = {nid: 0 for nid in system.servers}
    steps = data.draw(st.integers(min_value=5, max_value=25), label="steps")
    for step in range(steps):
        op = data.draw(
            st.sampled_from(["elect", "invoke", "commit", "deliver",
                             "deliver"]),
            label=f"op{step}",
        )
        nid = data.draw(st.sampled_from(UNIVERSE), label=f"nid{step}")
        if op == "elect":
            system.elect(nid)
        elif op == "invoke":
            counter += 1
            system.invoke(nid, f"m{counter}")
        elif op == "commit":
            system.commit(nid)
        else:
            pending = list(system.network.in_flight())
            if pending:
                system.deliver(
                    data.draw(st.sampled_from(pending), label=f"msg{step}")
                )
        for snid, server in system.servers.items():
            assert server.commit_len >= previous[snid]
            previous[snid] = server.commit_len


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_replay_is_deterministic(data):
    steps = data.draw(st.integers(min_value=5, max_value=20), label="steps")
    system = random_schedule(data, steps)
    clone = RaftSystem.replay(
        CONF0, SCHEME, system.trace, extra_nodes=UNIVERSE
    )
    for nid in system.servers:
        assert clone.servers[nid].snapshot() == system.servers[nid].snapshot()
        assert clone.servers[nid].commit_len == system.servers[nid].commit_len


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_committed_prefix_only_extends(data):
    """A server's committed prefix is never rewritten, only extended."""
    system = RaftSystem(CONF0, SCHEME, extra_nodes=UNIVERSE)
    counter = 0
    previous = {nid: () for nid in system.servers}
    steps = data.draw(st.integers(min_value=5, max_value=25), label="steps")
    for step in range(steps):
        op = data.draw(
            st.sampled_from(["elect", "invoke", "commit", "deliver",
                             "deliver", "deliver"]),
            label=f"op{step}",
        )
        nid = data.draw(st.sampled_from(UNIVERSE), label=f"nid{step}")
        if op == "elect":
            system.elect(nid)
        elif op == "invoke":
            counter += 1
            system.invoke(nid, f"m{counter}")
        elif op == "commit":
            system.commit(nid)
        else:
            pending = list(system.network.in_flight())
            if pending:
                system.deliver(
                    data.draw(st.sampled_from(pending), label=f"msg{step}")
                )
        for snid, server in system.servers.items():
            committed = server.committed_log()
            old = previous[snid]
            assert committed[: len(old)] == old, (
                f"S{snid} committed prefix rewritten"
            )
            previous[snid] = committed
