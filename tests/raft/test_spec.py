"""Tests for the asynchronous system, the network, SRaft rounds, and the
network-level Fig. 4 reproduction."""

import pytest

from repro.core.errors import InvalidOperation
from repro.raft import (
    Deliver,
    ElectReq,
    LEADER,
    Network,
    RaftSystem,
    SRaftSystem,
    run_buggy,
    run_fixed,
)
from repro.schemes import RaftSingleNodeScheme

CONF = frozenset({1, 2, 3})
SCHEME = RaftSingleNodeScheme()


class TestNetwork:
    def test_send_and_deliver(self):
        net = Network()
        msg = ElectReq(frm=1, to=2, time=1, log=())
        net.send(msg)
        assert net.can_deliver(msg)
        net.mark_delivered(msg)
        assert not net.can_deliver(msg)
        assert net.delivered() == [msg]

    def test_multiplicity(self):
        net = Network()
        msg = ElectReq(frm=1, to=2, time=1, log=())
        net.send(msg)
        net.send(msg)
        net.mark_delivered(msg)
        assert net.can_deliver(msg)
        assert net.pending_count() == 1

    def test_delivering_unknown_raises(self):
        net = Network()
        with pytest.raises(ValueError):
            net.mark_delivered(ElectReq(frm=1, to=2, time=1, log=()))


class TestRaftSystem:
    def test_full_election_and_commit(self):
        system = RaftSystem(CONF, SCHEME)
        system.elect(1)
        system.deliver_all()
        assert system.servers[1].role == LEADER
        system.invoke(1, "a")
        system.commit(1)
        system.deliver_all()
        assert system.servers[1].commit_len == 1
        assert system.check_log_safety() == []

    def test_lost_messages_are_fine(self):
        system = RaftSystem(CONF, SCHEME)
        system.elect(1)
        # Deliver only node 2's messages; node 3 never hears anything.
        system.deliver_all(lambda m: 3 not in (m.to, m.frm))
        assert system.servers[1].role == LEADER
        assert system.servers[3].time == 0

    def test_trace_records_events(self):
        system = RaftSystem(CONF, SCHEME)
        system.elect(1)
        system.deliver_all()
        kinds = [type(e).__name__ for e in system.trace]
        assert kinds[0] == "Elect"
        assert "Deliver" in kinds

    def test_replay_reproduces_state(self):
        system = RaftSystem(CONF, SCHEME)
        system.elect(1)
        system.deliver_all()
        system.invoke(1, "a")
        system.commit(1)
        system.deliver_all()
        clone = RaftSystem.replay(CONF, SCHEME, system.trace)
        for nid in CONF:
            assert clone.servers[nid].snapshot() == system.servers[nid].snapshot()

    def test_competing_leaders_cannot_both_commit(self):
        system = RaftSystem(CONF, SCHEME)
        system.elect(1)
        system.deliver_all(lambda m: m.to != 3 or m.frm != 1)
        assert system.servers[1].role == LEADER
        system.elect(2)  # term 2, dethrones node 1's supporters
        system.deliver_all(lambda m: isinstance(m, (ElectReq,)) or True)
        system.invoke(2, "b")
        system.commit(2)
        system.deliver_all()
        assert system.check_log_safety() == []


class TestSRaft:
    def test_atomic_election(self):
        sraft = SRaftSystem(CONF, SCHEME)
        round_ = sraft.elect_atomic(1, [2, 3])
        assert round_.won
        # The candidate stops counting once it has won, so the recorded
        # grant set is a quorum, not necessarily every receiver.
        assert round_.granted >= frozenset({1, 2})
        assert round_.receivers == frozenset({2, 3})
        assert sraft.servers[1].role == LEADER

    def test_atomic_election_partial(self):
        sraft = SRaftSystem(CONF, SCHEME)
        round_ = sraft.elect_atomic(1, [2])
        assert round_.won  # {1, 2} is a majority of 3
        round2 = sraft.elect_atomic(3, [])
        assert not round2.won

    def test_atomic_commit(self):
        sraft = SRaftSystem(CONF, SCHEME)
        sraft.elect_atomic(1, [2, 3])
        sraft.invoke(1, "a")
        round_ = sraft.commit_atomic(1, [2])
        assert round_.commit_len == 1
        assert sraft.servers[2].log == sraft.servers[1].log

    def test_rounds_must_be_time_ordered(self):
        sraft = SRaftSystem(CONF, SCHEME)
        sraft.elect_atomic(1, [2, 3])   # time 1
        sraft.elect_atomic(2, [3])      # time 2
        # Node 1 (still at time 1 on its own clock? no: it never saw
        # t2) -- its next election picks time 2, which is not below the
        # last round's time, so this is fine; force a stale round by
        # rewinding instead.
        sraft._last_round_time = 99
        with pytest.raises(InvalidOperation):
            sraft.elect_atomic(3, [1])

    def test_stale_receivers_are_skipped(self):
        sraft = SRaftSystem(CONF, SCHEME)
        sraft.elect_atomic(2, [3])      # 2 and 3 move to time 1
        sraft.servers[1].time = 0
        # Node 1 campaigns at time 1; nodes 2/3 are already at 1 -> both
        # deliveries are invalid and skipped.
        round_ = sraft.elect_atomic(1, [2, 3])
        assert round_.receivers == frozenset()
        assert not round_.won


class TestFig4NetworkLevel:
    def test_buggy_run_violates_safety(self):
        outcome = run_buggy()
        assert outcome.violated
        assert len(outcome.system.leaders()) == 2
        # The two leaders' commit quorums are disjoint: committed logs
        # diverge at slot 0.
        s1 = outcome.system.servers[1].committed_log()
        s2 = outcome.system.servers[2].committed_log()
        assert s1 and s2 and s1[0] != s2[0]

    def test_both_reconfigs_accepted_without_r3(self):
        outcome = run_buggy()
        assert outcome.reconfig_results == [
            "S1 removes S4: ok",
            "S2 removes S3: ok",
        ]

    def test_fixed_run_blocks_first_reconfig(self):
        outcome = run_fixed()
        assert not outcome.violated
        assert outcome.reconfig_results == ["S1 removes S4: r3-denied"]
