"""The hash ring and versioned routing table, unit-tested.

The properties the migration protocol leans on: tables always exactly
partition the hash space, lookups are deterministic and stable across
version bumps that do not touch a key's range, ``move`` is functional
and exact, and a split immediately followed by a merge restores the
original partition (at a higher version -- versions never rewind).
"""

import pytest
from hypothesis import given, strategies as st

from repro.net.node import _key_position
from repro.shard.ring import (
    HASH_SPACE,
    KeyRange,
    RoutingTable,
    hash_key,
)


# ----------------------------------------------------------------------
# hash_key
# ----------------------------------------------------------------------


@given(st.text(max_size=64))
def test_hash_key_in_space_and_deterministic(key):
    position = hash_key(key)
    assert 0 <= position < HASH_SPACE
    assert hash_key(key) == position


@given(st.text(max_size=64))
def test_node_side_hash_agrees_with_ring(key):
    # node.py keeps its own copy to avoid a shard->net->shard import
    # cycle; they must never diverge or routing and admission disagree.
    assert _key_position(key) == hash_key(key)


# ----------------------------------------------------------------------
# KeyRange
# ----------------------------------------------------------------------


def test_key_range_validates():
    with pytest.raises(ValueError):
        KeyRange(5, 5)
    with pytest.raises(ValueError):
        KeyRange(7, 3)
    with pytest.raises(ValueError):
        KeyRange(-1, 3)
    with pytest.raises(ValueError):
        KeyRange(0, HASH_SPACE + 1)


def test_key_range_halves_cover_exactly():
    rng = KeyRange(10, 21)
    low, high = rng.halves()
    assert (low.lo, low.hi) == (10, 15)
    assert (high.lo, high.hi) == (15, 21)
    assert low.width + high.width == rng.width


def test_key_range_cannot_split_a_unit():
    with pytest.raises(ValueError):
        KeyRange(3, 4).halves()


# ----------------------------------------------------------------------
# RoutingTable construction
# ----------------------------------------------------------------------


def test_single_shard_degenerate_ring():
    # One group owns everything; every key routes to it; the widest
    # range is the whole space; splitting hands off the upper half.
    table = RoutingTable.initial([7])
    assert table.groups() == (7,)
    assert table.owner("anything") == 7
    assert table.ranges_of(7) == (KeyRange(0, HASH_SPACE),)
    upper = table.split_candidate(7)
    assert (upper.lo, upper.hi) == (HASH_SPACE // 2, HASH_SPACE)


def test_initial_partitions_equally_and_exactly():
    table = RoutingTable.initial([3, 1, 2])
    assert table.version == 1
    assert table.groups() == (1, 2, 3)
    cursor = 0
    for rng, _ in table.entries:
        assert rng.lo == cursor
        cursor = rng.hi
    assert cursor == HASH_SPACE


def test_tables_must_partition_the_space():
    with pytest.raises(ValueError):
        RoutingTable(1, ((KeyRange(0, 10), 1),))  # gap to HASH_SPACE
    with pytest.raises(ValueError):
        RoutingTable(
            1,
            ((KeyRange(0, 10), 1), (KeyRange(20, HASH_SPACE), 2)),
        )
    with pytest.raises(ValueError):
        RoutingTable(0, ((KeyRange(0, HASH_SPACE), 1),))
    with pytest.raises(ValueError):
        RoutingTable(1, ())


def test_adjacent_same_owner_ranges_coalesce():
    split = RoutingTable(
        2, ((KeyRange(0, 100), 1), (KeyRange(100, HASH_SPACE), 1))
    )
    assert split.entries == ((KeyRange(0, HASH_SPACE), 1),)
    # Canonical form: same ownership compares equal however built.
    assert split.entries == RoutingTable.initial([1]).entries


# ----------------------------------------------------------------------
# Lookup
# ----------------------------------------------------------------------


@given(st.integers(2, 6), st.text(min_size=1, max_size=16))
def test_owner_matches_contains(groups, key):
    table = RoutingTable.initial(list(range(1, groups + 1)))
    gid = table.owner(key)
    assert any(
        rng.contains(hash_key(key)) for rng in table.ranges_of(gid)
    )


def test_owner_of_hash_rejects_out_of_space():
    table = RoutingTable.initial([1])
    with pytest.raises(ValueError):
        table.owner_of_hash(-1)
    with pytest.raises(ValueError):
        table.owner_of_hash(HASH_SPACE)


# ----------------------------------------------------------------------
# Reassignment
# ----------------------------------------------------------------------


def test_move_carves_exactly():
    table = RoutingTable.initial([1, 2])
    rng = KeyRange(100, 200)
    after = table.move(rng, 2)
    assert after.version == 2
    assert after.owner_of_hash(99) == 1
    assert after.owner_of_hash(100) == 2
    assert after.owner_of_hash(199) == 2
    assert after.owner_of_hash(200) == 1


def test_ownership_stable_under_unrelated_version_bumps():
    # A key outside the moved range keeps its owner across any number
    # of bumps -- the stability the client's stale-table safety story
    # (route correctly or get refused, never silently misroute) needs.
    table = RoutingTable.initial([1, 2, 3])
    keys = [f"user:{i}" for i in range(200)]
    owners = {key: table.owner(key) for key in keys}
    moved = KeyRange(0, 1000)  # a sliver nothing hashes into here
    for _ in range(5):
        table = table.move(moved, 3 if table.owner_of_hash(0) != 3 else 2)
    for key in keys:
        if not moved.contains(hash_key(key)):
            assert table.owner(key) == owners[key]
    assert table.version == 6


def test_split_then_merge_restores_partition():
    table = RoutingTable.initial([1, 2])
    upper = table.split_candidate(1)
    split = table.move(upper, 2)
    assert split.owner_of_hash(upper.lo) == 2
    merged = split.move(upper, 1)
    # Ownership round-trips; the version never rewinds.
    assert merged.entries == table.entries
    assert merged.version == 3


def test_split_candidate_is_deterministic():
    table = RoutingTable.initial([1, 2])
    assert table.split_candidate(1) == table.split_candidate(1)
    with pytest.raises(ValueError):
        table.split_candidate(99)  # owns nothing


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------


@given(st.integers(1, 5))
def test_dict_round_trip(groups):
    table = RoutingTable.initial(list(range(1, groups + 1)))
    again = RoutingTable.from_dict(table.to_dict())
    assert again == table
