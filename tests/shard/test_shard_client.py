"""ShardClient routing logic, unit-tested against stub group clients.

No sockets here: the ``client_factory`` hook injects stubs, so these
tests pin the routing loop's contract precisely -- who gets which key,
what happens on a ``wrong-shard`` refusal (refetch and re-route), and
that retry exhaustion surfaces as :class:`ClientTimeout` instead of a
hang (the regression ISSUE 8 calls out).
"""

import time

import pytest

from repro.net.client import ClientError, ClientTimeout, WrongShard
from repro.runtime.history import History
from repro.shard.client import ShardClient, TableAuthority
from repro.shard.ring import RoutingTable, hash_key


def _key_owned_by(table: RoutingTable, gid: int) -> str:
    for i in range(10_000):
        key = f"key-{i}"
        if table.owner(key) == gid:
            return key
    raise AssertionError(f"no probe key hashes into group {gid}")


class _StubGroup:
    """A scripted stand-in for one group's NetClient."""

    def __init__(self, script):
        #: ``script(command, table_version)`` -> result or raises.
        self.script = script
        self.calls = []

    def request(self, command, operation=None, table_version=None):
        self.calls.append((command, table_version))
        result = self.script(command, table_version)
        return result

    def close(self):
        pass


def _client(authority, stubs, **kwargs):
    kwargs.setdefault("total_timeout_s", 2.0)
    kwargs.setdefault("reroute_delay_s", 0.01)
    return ShardClient(
        authority,
        {gid: {1: ("127.0.0.1", 1)} for gid in stubs},
        client_factory=lambda gid: stubs[gid],
        **kwargs,
    )


# ----------------------------------------------------------------------
# TableAuthority
# ----------------------------------------------------------------------


def test_authority_rejects_stale_publish():
    table = RoutingTable.initial([1, 2])
    authority = TableAuthority(table)
    with pytest.raises(ValueError):
        authority.publish(table)  # same version
    newer = table.move(table.split_candidate(1), 2)
    authority.publish(newer)
    assert authority.table() is newer
    with pytest.raises(ValueError):
        authority.publish(table)  # rewind


# ----------------------------------------------------------------------
# Routing
# ----------------------------------------------------------------------


def test_single_key_ops_route_to_owner_and_stamp_version():
    table = RoutingTable.initial([1, 2])
    authority = TableAuthority(table)
    stubs = {1: _StubGroup(lambda c, v: "g1"),
             2: _StubGroup(lambda c, v: "g2")}
    client = _client(authority, stubs)
    key1 = _key_owned_by(table, 1)
    key2 = _key_owned_by(table, 2)
    assert client.put(key1, 10) == "g1"
    assert client.get(key2) == "g2"
    assert stubs[1].calls == [(("put", key1, 10), 1)]
    assert stubs[2].calls == [(("get", key2), 1)]


def test_wrong_shard_triggers_refetch_and_reroute():
    table = RoutingTable.initial([1, 2])
    authority = TableAuthority(table)
    key = _key_owned_by(table, 1)
    rng = next(
        r for r in table.ranges_of(1) if r.contains(hash_key(key))
    )
    moved = table.move(rng, 2)

    def frozen(command, version):
        # Group 1 froze the range mid-migration; publish the new table
        # the moment it refuses, as the manager's last step would.
        if authority.table().version == 1:
            authority.publish(moved)
        raise WrongShard("frozen", table_version=moved.version)

    stubs = {1: _StubGroup(frozen), 2: _StubGroup(lambda c, v: "moved")}
    client = _client(authority, stubs)
    assert client.get(key) == "moved"
    assert client.reroutes == 1
    # The re-route went to the new owner, stamped with the new version.
    assert stubs[2].calls == [(("get", key), 2)]


def test_reroute_exhaustion_is_a_timeout_not_a_hang():
    # Every group refuses forever (a migration that never publishes):
    # the client must come back with ClientTimeout in bounded time.
    table = RoutingTable.initial([1])
    authority = TableAuthority(table)
    stubs = {1: _StubGroup(
        lambda c, v: (_ for _ in ()).throw(WrongShard("no", 99))
    )}
    client = _client(authority, stubs, total_timeout_s=0.3)
    started = time.monotonic()
    with pytest.raises(ClientTimeout):
        client.put("stuck", 1)
    assert time.monotonic() - started < 5.0
    assert client.reroutes > 0
    # The operation's outcome is unknown: it stays pending.
    assert client.history.operations[-1].completed is False


def test_group_timeouts_are_never_rerouted():
    # ClientTimeout from the owning group means "unknown outcome";
    # trying another group could double-apply.  It must propagate.
    table = RoutingTable.initial([1, 2])
    authority = TableAuthority(table)
    calls = []

    def unknown(command, version):
        calls.append(command)
        raise ClientTimeout("maybe applied")

    stubs = {1: _StubGroup(unknown), 2: _StubGroup(unknown)}
    client = _client(authority, stubs)
    key = _key_owned_by(table, 1)
    with pytest.raises(ClientTimeout):
        client.add(key, 5)
    assert calls == [("add", key, 5)]  # one group, one attempt
    assert stubs[2].calls == []


def test_definitive_refusals_propagate():
    table = RoutingTable.initial([1])
    authority = TableAuthority(table)
    stubs = {1: _StubGroup(
        lambda c, v: (_ for _ in ()).throw(ClientError("denied"))
    )}
    client = _client(authority, stubs)
    with pytest.raises(ClientError):
        client.put("k", 1)


# ----------------------------------------------------------------------
# Multi-key fan-out
# ----------------------------------------------------------------------


def test_mget_fans_out_by_owner():
    table = RoutingTable.initial([1, 2])
    authority = TableAuthority(table)
    stubs = {
        1: _StubGroup(lambda c, v: f"g1:{c[1]}"),
        2: _StubGroup(lambda c, v: f"g2:{c[1]}"),
    }
    client = _client(authority, stubs)
    keys = [f"key-{i}" for i in range(20)]
    results = client.mget(keys + keys)  # duplicates collapse
    assert set(results) == set(keys)
    for key in keys:
        gid = table.owner(key)
        assert results[key] == f"g{gid}:{key}"
        assert (("get", key), 1) in stubs[gid].calls
    # Both groups actually saw work (20 keys cannot all hash one way
    # for this to be a fan-out test; blake2b spreads them).
    assert stubs[1].calls and stubs[2].calls
    assert len(client.history) == len(keys)


def test_mget_surfaces_failures_after_completing_the_rest():
    table = RoutingTable.initial([1, 2])
    authority = TableAuthority(table)
    bad_key = _key_owned_by(table, 1)

    def flaky(command, version):
        if command[1] == bad_key:
            raise ClientTimeout("gone")
        return "ok"

    stubs = {1: _StubGroup(flaky), 2: _StubGroup(flaky)}
    client = _client(authority, stubs)
    keys = [f"key-{i}" for i in range(10)]
    if bad_key not in keys:
        keys.append(bad_key)
    with pytest.raises(ClientTimeout):
        client.mget(keys)


def test_shared_history_across_groups_is_one_record():
    table = RoutingTable.initial([1, 2])
    authority = TableAuthority(table)
    stubs = {1: _StubGroup(lambda c, v: True),
             2: _StubGroup(lambda c, v: True)}
    history = History()
    client = _client(authority, stubs, history=history)
    client.put(_key_owned_by(table, 1), 1)
    client.put(_key_owned_by(table, 2), 2)
    assert [op.op_id for op in history.operations] == [0, 1]
