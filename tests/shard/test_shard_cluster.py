"""Sharding over real processes and real sockets.

Three layers, cheapest first: the wrong-shard admission check at the
wire protocol level (one group, hand-stamped requests), a fault-free
split + merge with data verification, and the acceptance scenario --
split and merge under a per-shard nemesis with the merged history
checked per key by the unmodified Wing-Gong checker.
"""

import pytest

from repro.net.client import NetClient, WrongShard
from repro.net.procs import LocalCluster
from repro.net.wire import ClientRequest
from repro.runtime.linearize import check_history
from repro.shard import (
    HASH_SPACE,
    KeyRange,
    RoutingTable,
    ShardScenarioConfig,
    ShardedCluster,
    hash_key,
    run_shard_scenario,
)

LOWER = KeyRange(0, HASH_SPACE // 2)
UPPER = KeyRange(HASH_SPACE // 2, HASH_SPACE)


def _key_in(rng: KeyRange, tag: str = "probe") -> str:
    for i in range(10_000):
        key = f"{tag}-{i}"
        if rng.contains(hash_key(key)):
            return key
    raise AssertionError(f"no key hashes into {rng.describe()}")


def _push_all(cluster: LocalCluster, admin: NetClient, version, ranges):
    for nid in cluster.nids:
        reply = admin.shard_ownership(nid, version, ranges)
        assert reply.version >= version


# ----------------------------------------------------------------------
# The admission check, at the wire
# ----------------------------------------------------------------------


def test_stamped_requests_honor_ownership_unstamped_pass():
    with LocalCluster(nids=(1, 2, 3), seed=21) as cluster:
        cluster.wait_for_leader()
        with cluster.client(client_id="admin") as admin:
            # The group owns only the lower half of the space.
            _push_all(cluster, admin, 1, ((LOWER.lo, LOWER.hi),))
            inside = _key_in(LOWER)
            outside = _key_in(UPPER)
            with cluster.client(client_id="c0") as client:
                # Owned key, matching stamp: served.
                assert client.request(
                    ("put", inside, 1), table_version=1
                ) is True
                # Unowned key, stamped: refused at admission, and the
                # refusal carries the node's version.
                with pytest.raises(WrongShard) as exc:
                    client.request(("put", outside, 2), table_version=1)
                assert exc.value.table_version == 1
                # A stamp newer than the node's ownership is refused
                # even for an owned key -- the node cannot verify it.
                with pytest.raises(WrongShard):
                    client.request(("put", inside, 3), table_version=9)
                # Unstamped (legacy, unsharded) clients are untouched.
                assert client.request(("put", outside, 4)) is True
                assert client.request(("get", outside)) == 4


def test_refusals_never_enter_the_log():
    with LocalCluster(nids=(1, 2, 3), seed=22) as cluster:
        leader = cluster.wait_for_leader()
        with cluster.client(client_id="admin") as admin:
            _push_all(cluster, admin, 1, ((LOWER.lo, LOWER.hi),))
            outside = _key_in(UPPER)
            with cluster.client(client_id="c0") as client:
                with pytest.raises(WrongShard):
                    client.request(("put", outside, 1), table_version=1)
                entries = client.committed_log(leader)
                assert all(
                    tuple(entry.payload or ())[:2] != ("put", outside)
                    for entry in entries
                )


def test_dedup_exemption_outlives_a_freeze():
    # At-most-once beats ownership: a retry of a pre-freeze command
    # (same client_id+seq, already in the log) must be *served* after
    # the range freezes away, while a fresh command on the same key is
    # refused.  Raw _rpc keeps the seq under test control.
    with LocalCluster(nids=(1, 2, 3), seed=23) as cluster:
        leader = cluster.wait_for_leader()
        with cluster.client(client_id="admin") as admin:
            _push_all(cluster, admin, 1, ((0, HASH_SPACE),))
            key = _key_in(UPPER)
            with cluster.client(client_id="dedup-c") as client:
                first = ClientRequest(
                    client_id="dedup-c", seq=0,
                    command=("put", key, "v1"), table_version=1,
                )
                reply = client._rpc(leader, first, timeout_s=5.0)
                assert reply.ok
                # Freeze: the upper half moves away at version 2.
                _push_all(cluster, admin, 2, ((LOWER.lo, LOWER.hi),))
                # The retry is served from the log, not refused...
                again = client._rpc(leader, first, timeout_s=5.0)
                assert again.ok
                # ...but a *new* command on the frozen key is refused.
                fresh = ClientRequest(
                    client_id="dedup-c", seq=1,
                    command=("put", key, "v2"), table_version=1,
                )
                refused = client._rpc(leader, fresh, timeout_s=5.0)
                assert not refused.ok
                assert refused.error == "wrong-shard"
                assert refused.table_version == 2


# ----------------------------------------------------------------------
# Fault-free split + merge, data verified
# ----------------------------------------------------------------------


def test_split_then_merge_keeps_every_key():
    with ShardedCluster(groups=2, nodes_per_group=3, seed=31) as sharded:
        for gid in sharded.gids:
            sharded.wait_for_leader(gid)
        with sharded.client(client_id="c0") as client:
            expected = {f"k-{i}": i * 11 for i in range(40)}
            for key, value in expected.items():
                client.put(key, value)

            rng, split_table = sharded.split(1, 2)
            assert split_table.version == 2
            # The moved range really changed hands in the table.
            assert split_table.owner_of_hash(rng.lo) == 2
            for key, value in expected.items():
                assert client.get(key) == value, key

            merged_table = sharded.merge(rng, 1)
            assert merged_table.version == 3
            # Ownership round-tripped to the initial partition.
            assert merged_table.entries == RoutingTable.initial([1, 2]).entries
            for key, value in expected.items():
                assert client.get(key) == value, key

            result = check_history(client.history)
            assert result.ok, result.describe()


# ----------------------------------------------------------------------
# The acceptance scenario: split + merge under nemesis load
# ----------------------------------------------------------------------


def test_split_and_merge_under_nemesis_is_per_key_linearizable():
    config = ShardScenarioConfig(
        groups=2,
        nodes_per_group=3,
        clients=2,
        ops=100,
        keys=24,
        seed=1,
        faults=True,
        kills_per_group=1,
        partition_groups=1,
        op_timeout_s=8.0,
        run_timeout_s=150.0,
    )
    result = run_shard_scenario(config)
    assert result.linearizability.ok, result.describe()
    assert result.stats.migrations_done == 2, result.describe()
    assert result.stats.kills >= 2, result.describe()
    assert result.stats.partitions >= 1, result.describe()
    assert result.ok, result.describe()
    # The scenario completed real work, not just survived.
    assert result.stats.ops_completed >= config.ops // 2
