"""The ElectionDriver extraction changed *nothing* observable.

The election-timeout/heartbeat policy used to live inline in
``AutonomousCluster``; it now lives in the transport-agnostic
:class:`repro.runtime.driver.ElectionDriver` so the real-TCP runtime
(:mod:`repro.net.node`) can run the identical policy.  These tests pin
the extraction: a frozen verbatim copy of the pre-driver implementation
(``LegacyAutonomousCluster`` below) is run side by side with the
refactored cluster under identical seeds and identical driving, and
every observable -- simulated clock, event counts, RNG stream position,
leader-change records, and full per-server state -- must be
bit-identical.  Any divergence in scheduling order or RNG consumption
introduced by the refactor fails here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.cache import Config, NodeId
from repro.core.config import ReconfigScheme
from repro.raft.messages import CommitReq, ElectReq, Msg
from repro.raft.server import LEADER, Server
from repro.runtime import AutonomousCluster, TimingConfig
from repro.runtime.simnet import LatencyModel, Simulator
from repro.schemes import RaftSingleNodeScheme

NODES = frozenset({1, 2, 3})
SCHEME = RaftSingleNodeScheme()


# ----------------------------------------------------------------------
# The pre-extraction implementation, frozen verbatim (minus docstrings).
# Do not "improve" this class: it is the reference the refactor is
# measured against.
# ----------------------------------------------------------------------


@dataclass
class LegacyLeaderChange:
    at_ms: float
    leader: NodeId
    term: int


class LegacyAutonomousCluster:
    def __init__(
        self,
        conf0: Config,
        scheme: ReconfigScheme,
        seed: int = 0,
        latency: Optional[LatencyModel] = None,
        timing: Optional[TimingConfig] = None,
        processing_ms: float = 0.05,
        extra_nodes=(),
    ) -> None:
        self.scheme = scheme
        self.sim = Simulator(seed=seed)
        self.latency = latency or LatencyModel()
        self.timing = timing or TimingConfig()
        self.processing_ms = processing_ms
        nodes = set(scheme.members(conf0)) | set(extra_nodes)
        self.servers: Dict[NodeId, Server] = {
            nid: Server(nid=nid, conf0=conf0) for nid in sorted(nodes)
        }
        self._crashed: set = set()
        self._timer_epoch: Dict[NodeId, int] = {nid: 0 for nid in self.servers}
        self._last_heartbeat: Dict[NodeId, float] = {
            nid: 0.0 for nid in self.servers
        }
        self.leader_changes: List[LegacyLeaderChange] = []
        for nid in self.servers:
            self._arm_election_timer(nid)

    def _draw_timeout(self) -> float:
        lo = self.timing.election_timeout_min_ms
        hi = self.timing.election_timeout_max_ms
        return lo + self.sim.rng.random() * (hi - lo)

    def _arm_election_timer(self, nid: NodeId) -> None:
        self._timer_epoch[nid] += 1
        epoch = self._timer_epoch[nid]
        self.sim.schedule(
            self._draw_timeout(), lambda: self._election_timer_fired(nid, epoch)
        )

    def _election_timer_fired(self, nid: NodeId, epoch: int) -> None:
        if epoch != self._timer_epoch[nid] or nid in self._crashed:
            return
        server = self.servers[nid]
        members = self.scheme.members(server.config())
        if nid in members and server.role != LEADER:
            self._send_all(server.start_election(self.scheme))
            if server.role == LEADER:
                self._became_leader(nid)
        self._arm_election_timer(nid)

    def _became_leader(self, nid: NodeId) -> None:
        server = self.servers[nid]
        self.leader_changes.append(
            LegacyLeaderChange(at_ms=self.sim.now, leader=nid, term=server.time)
        )
        self._heartbeat(nid, server.time)

    def _heartbeat(self, nid: NodeId, term: int) -> None:
        server = self.servers[nid]
        if (
            nid in self._crashed
            or server.role != LEADER
            or server.time != term
        ):
            return
        self._send_all(server.broadcast_commit(self.scheme))
        self.sim.schedule(
            self.timing.heartbeat_ms, lambda: self._heartbeat(nid, term)
        )

    def _send_all(self, msgs) -> None:
        msgs = list(msgs)
        tx = self.latency.tx_per_entry_ms * sum(
            self._payload(m) for m in msgs
        )
        for msg in msgs:
            if msg.to not in self.servers:
                continue
            delay = tx + self.latency.sample(self.sim.rng, self._payload(msg))
            self.sim.schedule(delay, lambda m=msg: self._receive(m))

    def _payload(self, msg: Msg) -> int:
        if isinstance(msg, (ElectReq, CommitReq)):
            receiver = self.servers.get(msg.to)
            have = len(receiver.log) if receiver is not None else 0
            return max(0, len(msg.log) - have)
        return 0

    def _receive(self, msg: Msg) -> None:
        if msg.to in self._crashed:
            return
        server = self.servers[msg.to]
        was_leader = server.role == LEADER
        responses = server.handle(msg, self.scheme)
        if isinstance(msg, (CommitReq, ElectReq)) and responses:
            self._last_heartbeat[msg.to] = self.sim.now
            self._arm_election_timer(msg.to)
        if not was_leader and server.role == LEADER:
            self._became_leader(msg.to)
        self.sim.schedule(
            self.processing_ms, lambda: self._send_all(responses)
        )

    def crash(self, nid: NodeId) -> None:
        self._crashed.add(nid)

    def restart(self, nid: NodeId) -> None:
        self._crashed.discard(nid)
        self.servers[nid].role = "follower"
        self._arm_election_timer(nid)

    def leader(self) -> Optional[NodeId]:
        best = None
        for nid, server in self.servers.items():
            if nid in self._crashed or server.role != LEADER:
                continue
            if best is None or server.time > self.servers[best].time:
                best = nid
        return best

    def wait_for_leader(self, max_wait_ms: float = 2_000.0) -> Optional[NodeId]:
        deadline = self.sim.now + max_wait_ms
        self.sim.run_until(
            lambda: self.leader() is not None or self.sim.now >= deadline
        )
        return self.leader()

    def submit(self, payload, max_wait_ms: float = 2_000.0) -> Optional[float]:
        start = self.sim.now
        deadline = start + max_wait_ms
        while self.sim.now < deadline:
            leader = self.wait_for_leader(deadline - self.sim.now)
            if leader is None:
                return None
            server = self.servers[leader]
            if not server.invoke(payload):
                continue
            target = len(server.log)
            self._send_all(server.broadcast_commit(self.scheme))
            self.sim.run_until(
                lambda: server.commit_len >= target
                or server.role != LEADER
                or leader in self._crashed
                or self.sim.now >= deadline
            )
            if server.commit_len >= target:
                return self.sim.now - start
        return None

    def run_for(self, duration_ms: float) -> None:
        deadline = self.sim.now + duration_ms
        self.sim.run_until(lambda: self.sim.now >= deadline)


# ----------------------------------------------------------------------
# Equivalence harness
# ----------------------------------------------------------------------


def observe(cluster):
    """Everything a run exposes, in comparable form."""
    return {
        "now": cluster.sim.now,
        "events_processed": cluster.sim.events_processed,
        "pending": cluster.sim.pending(),
        # The RNG stream position: identical histories imply identical
        # future draws; getstate() captures consumption exactly.
        "rng_state": cluster.sim.rng.getstate(),
        "leader_changes": [
            (c.at_ms, c.leader, c.term) for c in cluster.leader_changes
        ],
        "servers": {
            nid: (s.log, s.time, s.commit_len, s.role, s.votes, s.voted_at,
                  dict(s.acked))
            for nid, s in cluster.servers.items()
        },
    }


def drive(cluster, script):
    """Apply one deterministic driving script to either implementation."""
    outcomes = []
    for step in script:
        kind = step[0]
        if kind == "wait_leader":
            outcomes.append(("leader", cluster.wait_for_leader()))
        elif kind == "submit":
            outcomes.append(("submit", cluster.submit(step[1])))
        elif kind == "crash":
            cluster.crash(step[1])
        elif kind == "restart":
            cluster.restart(step[1])
        elif kind == "run_for":
            cluster.run_for(step[1])
        else:  # pragma: no cover - script typo guard
            raise ValueError(step)
    return outcomes


SCRIPTS = {
    "quiet_start": [("wait_leader",), ("run_for", 200.0)],
    "requests": [
        ("wait_leader",),
        ("submit", "a"),
        ("submit", "b"),
        ("run_for", 50.0),
        ("submit", "c"),
    ],
    "leader_crash": [
        ("wait_leader",),
        ("submit", "before"),
        ("crash", 1),
        ("crash", 2),
        ("run_for", 120.0),
        ("restart", 1),
        ("submit", "after"),
        ("run_for", 80.0),
    ],
}


def test_seeded_runs_bit_identical_across_scripts():
    for name, script in SCRIPTS.items():
        for seed in range(6):
            legacy = LegacyAutonomousCluster(NODES, SCHEME, seed=seed)
            current = AutonomousCluster(NODES, SCHEME, seed=seed)
            legacy_out = drive(legacy, script)
            current_out = drive(current, script)
            assert legacy_out == current_out, (name, seed)
            assert observe(legacy) == observe(current), (name, seed)


def test_bit_identical_under_custom_timing_and_extra_nodes():
    timing = TimingConfig(
        heartbeat_ms=2.0,
        election_timeout_min_ms=8.0,
        election_timeout_max_ms=12.0,
    )
    for seed in range(4):
        kwargs = dict(seed=seed, timing=timing, extra_nodes=(4, 5))
        legacy = LegacyAutonomousCluster(NODES, SCHEME, **kwargs)
        current = AutonomousCluster(NODES, SCHEME, **kwargs)
        assert drive(legacy, SCRIPTS["requests"]) == drive(
            current, SCRIPTS["requests"]
        )
        assert observe(legacy) == observe(current), seed


def test_crash_during_heartbeat_chain_identical():
    # Crashing the leader mid-chain exercises the is_active guard that
    # replaced the inline _crashed check.
    for seed in range(4):
        legacy = LegacyAutonomousCluster(NODES, SCHEME, seed=seed)
        current = AutonomousCluster(NODES, SCHEME, seed=seed)
        for c in (legacy, current):
            first = c.wait_for_leader()
            c.submit("x")
            c.crash(first)
            c.run_for(300.0)
            c.restart(first)
            c.run_for(100.0)
        assert observe(legacy) == observe(current), seed
