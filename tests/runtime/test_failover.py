"""Tests for failure injection and client-side failover."""

import pytest

from repro.runtime import Cluster, FailoverDriver
from repro.schemes import RaftSingleNodeScheme

NODES = frozenset({1, 2, 3})
SCHEME = RaftSingleNodeScheme()


def fresh_cluster(seed=1, extra=frozenset({4})):
    cluster = Cluster(NODES, SCHEME, seed=seed, extra_nodes=extra)
    assert cluster.elect(1)
    return cluster


class TestCrash:
    def test_crashed_node_drops_messages(self):
        cluster = fresh_cluster()
        cluster.crash(3)
        cluster.submit("a", leader=1)  # {1,2} still a quorum
        assert cluster.servers[3].log == ()
        assert cluster.servers[2].log != ()

    def test_crash_unknown_node(self):
        cluster = fresh_cluster()
        with pytest.raises(KeyError):
            cluster.crash(99)

    def test_submit_to_crashed_leader_fails_fast(self):
        cluster = fresh_cluster()
        cluster.crash(1)
        with pytest.raises(RuntimeError):
            cluster.submit("a", leader=1)

    def test_crashed_candidate_cannot_win(self):
        cluster = fresh_cluster()
        cluster.crash(2)
        assert not cluster.elect(2)

    def test_quorum_loss_blocks_commits(self):
        cluster = fresh_cluster()
        cluster.crash(2)
        cluster.crash(3)
        with pytest.raises(RuntimeError):
            cluster.submit("a", leader=1, max_wait_ms=20.0)

    def test_restart_preserves_log(self):
        cluster = fresh_cluster()
        cluster.submit("a", leader=1)
        log_before = cluster.servers[2].log
        cluster.crash(2)
        cluster.restart(2)
        assert cluster.servers[2].log == log_before
        # And the node participates again.
        cluster.crash(3)
        cluster.submit("b", leader=1)
        assert len(cluster.servers[2].log) == 2


class TestFailoverDriver:
    def test_transparent_leader_change(self):
        cluster = fresh_cluster(seed=2)
        driver = FailoverDriver(cluster, leader=1)
        driver.submit(("put", "a", 1))
        cluster.crash(1)
        record = driver.submit(("put", "b", 2))
        assert record.latency_ms is not None
        assert driver.leader != 1
        assert len(driver.events) == 1
        assert driver.events[0].old_leader == 1

    def test_failover_prefers_up_to_date_logs(self):
        cluster = fresh_cluster(seed=3)
        driver = FailoverDriver(cluster, leader=1)
        driver.submit(("put", "a", 1))
        cluster.crash(1)
        driver.submit(("put", "b", 2))
        # The new leader must hold the committed entry.
        leader_log = cluster.servers[driver.leader].committed_log()
        assert any(e.payload == ("put", "a", 1) for e in leader_log)

    def test_dead_node_replacement_story(self):
        cluster = fresh_cluster(seed=4)
        driver = FailoverDriver(cluster, leader=1)
        for i in range(5):
            driver.submit(("put", f"k{i}", i))
        cluster.crash(1)
        driver.submit(("put", "mid", 0))
        driver.reconfigure(frozenset({2, 3}))
        driver.reconfigure(frozenset({2, 3, 4}))
        driver.submit(("put", "end", 1))
        cluster.sync_followers(driver.leader)
        assert cluster.check_safety() == []
        assert sorted(cluster.servers[driver.leader].config()) == [2, 3, 4]
        assert len(cluster.servers[4].log) == len(
            cluster.servers[driver.leader].log
        )

    def test_no_live_quorum_raises(self):
        cluster = fresh_cluster(seed=5, extra=frozenset())
        driver = FailoverDriver(cluster, leader=1)
        cluster.crash(1)
        cluster.crash(2)
        with pytest.raises(RuntimeError):
            driver.submit(("put", "a", 1))

    def test_reconfigure_satisfies_r3_automatically(self):
        cluster = fresh_cluster(seed=6)
        driver = FailoverDriver(cluster, leader=1)
        # Fresh leader at term 1 with no commit of its own term yet:
        # the driver must interpose a no-op.
        driver.reconfigure(frozenset({1, 2, 3, 4}))
        assert sorted(cluster.servers[1].config()) == [1, 2, 3, 4]
        payloads = [e.payload for e in cluster.servers[1].log]
        assert ("noop",) in payloads
