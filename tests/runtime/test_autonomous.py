"""Tests for the autonomous (timer-driven) cluster."""


from repro.runtime import AutonomousCluster, TimingConfig
from repro.schemes import RaftSingleNodeScheme

NODES = frozenset({1, 2, 3})
SCHEME = RaftSingleNodeScheme()


def cluster(seed=0, **kwargs):
    return AutonomousCluster(NODES, SCHEME, seed=seed, **kwargs)


class TestSelfElection:
    def test_a_leader_emerges_without_external_driving(self):
        c = cluster(seed=1)
        leader = c.wait_for_leader()
        assert leader in NODES
        # Within one election timeout window plus a round trip.
        assert c.sim.now < c.timing.election_timeout_max_ms + 10

    def test_heartbeats_suppress_new_elections(self):
        c = cluster(seed=2)
        c.wait_for_leader()
        first_term = c.servers[c.leader()].time
        c.run_for(300.0)
        # A healthy leader keeps its term; no churn.
        assert c.servers[c.leader()].time == first_term
        assert len(c.leader_changes) == 1

    def test_leaders_emerge_across_seeds(self):
        for seed in range(8):
            c = cluster(seed=seed)
            assert c.wait_for_leader() is not None, f"seed {seed}"


class TestRequests:
    def test_submit_commits(self):
        c = cluster(seed=3)
        latency = c.submit("a")
        assert latency is not None and latency > 0
        leader = c.leader()
        assert c.servers[leader].commit_len == 1

    def test_many_requests_stay_safe(self):
        c = cluster(seed=4)
        for i in range(20):
            assert c.submit(f"m{i}") is not None
        c.run_for(50.0)
        assert c.check_safety() == []


class TestCrashRecovery:
    def test_leader_crash_recovers(self):
        c = cluster(seed=5)
        first = c.wait_for_leader()
        c.submit("before")
        c.crash(first)
        latency = c.submit("after", max_wait_ms=5_000.0)
        assert latency is not None
        second = c.leader()
        assert second != first
        # The committed entry survived the failover.
        assert any(
            e.payload == "before" for e in c.servers[second].committed_log()
        )

    def test_restart_rejoins(self):
        c = cluster(seed=6)
        first = c.wait_for_leader()
        c.submit("x")
        c.crash(first)
        assert c.submit("y", max_wait_ms=5_000.0) is not None
        c.restart(first)
        c.run_for(100.0)
        # The restarted node caught up via heartbeats.
        assert len(c.servers[first].log) == 2
        assert c.check_safety() == []

    def test_no_quorum_no_progress_but_no_corruption(self):
        c = cluster(seed=7)
        c.wait_for_leader()
        c.submit("committed")
        c.crash(2)
        c.crash(3)
        assert c.submit("doomed", max_wait_ms=150.0) is None
        assert c.check_safety() == []


class TestTiming:
    def test_custom_timing_config(self):
        timing = TimingConfig(
            heartbeat_ms=2.0,
            election_timeout_min_ms=8.0,
            election_timeout_max_ms=12.0,
        )
        c = cluster(seed=8, timing=timing)
        c.wait_for_leader()
        assert c.sim.now < 20.0

    def test_determinism_per_seed(self):
        a = cluster(seed=9)
        b = cluster(seed=9)
        assert a.wait_for_leader() == b.wait_for_leader()
        assert a.sim.now == b.sim.now
