"""Fault injection, the chaos bugfix regressions, and nemesis runs.

The three regression tests each encode a bug that the fault-injecting
network surfaced (see ISSUE 2):

* a node crashed between receiving a message and its processing
  callback kept *sending* (its queued responses leaked);
* ``Cluster.restart`` resurrected volatile state, so a crashed leader
  came back as a zombie leader clients would submit to;
* ``FailoverDriver.submit`` violated at-most-once: a timeout after the
  old leader appended re-invoked the same payload on the new leader.

Each test demonstrably fails when its fix is reverted (the at-most-once
test emulates the pre-fix driver inline to prove the scenario bites).
"""

import pytest

from repro.runtime import (
    Cluster,
    FailoverDriver,
    FaultPlan,
    LatencyModel,
    NemesisConfig,
    NetworkConditions,
    duplicate_request_audit,
    fig16_chaos_config,
    run_nemesis,
)
from repro.runtime.linearize import check_history
from repro.schemes import RaftSingleNodeScheme

NODES = frozenset({1, 2, 3})
SCHEME = RaftSingleNodeScheme()
FLAT = LatencyModel(jitter=0.0, spike_prob=0.0)


def payload_count(cluster, nid, payload):
    return sum(
        1 for e in cluster.servers[nid].committed_log() if e.payload == payload
    )


def advance_to(cluster, t_ms):
    """Advance simulated time to ``t_ms`` exactly (a sentinel event
    keeps ``run_until`` from overshooting to the next real event)."""
    cluster.sim.schedule(max(0.0, t_ms - cluster.sim.now), lambda: None)
    cluster.sim.run_until(lambda: cluster.sim.now >= t_ms)


class TestFaultPlan:
    def test_deterministic_per_seed(self):
        a = FaultPlan(seed=5, conditions=NetworkConditions(drop_prob=0.3))
        b = FaultPlan(seed=5, conditions=NetworkConditions(drop_prob=0.3))
        decisions_a = [a.should_drop(1, 2, 0.0) for _ in range(100)]
        decisions_b = [b.should_drop(1, 2, 0.0) for _ in range(100)]
        assert decisions_a == decisions_b
        assert a.dropped == b.dropped > 0

    def test_per_link_override(self):
        plan = FaultPlan(
            seed=1,
            conditions=NetworkConditions(
                drop_prob=0.0, link_drop_prob={(1, 2): 1.0}
            ),
        )
        assert plan.should_drop(1, 2, 0.0)
        assert not plan.should_drop(2, 1, 0.0)
        assert not plan.should_drop(1, 3, 0.0)

    def test_partition_window_and_heal(self):
        plan = FaultPlan(seed=0)
        plan.add_partition(10.0, 20.0, {1}, {2, 3})
        assert not plan.partitioned(1, 2, 9.9)
        assert plan.partitioned(1, 2, 10.0)
        assert plan.partitioned(2, 1, 15.0)  # symmetric
        assert not plan.partitioned(1, 2, 20.0)  # healed

    def test_asymmetric_partition(self):
        plan = FaultPlan(seed=0)
        plan.add_partition(0.0, 10.0, {2, 3}, {1}, symmetric=False)
        assert plan.partitioned(2, 1, 5.0)
        assert not plan.partitioned(1, 2, 5.0)

    def test_crash_schedule_applies(self):
        plan = FaultPlan(seed=0)
        plan.add_crash(2, at_ms=5.0, restart_ms=50.0)
        cluster = Cluster(NODES, SCHEME, seed=1, faults=plan)
        assert cluster.elect(1)
        advance_to(cluster, 6.0)
        assert cluster.is_crashed(2)
        advance_to(cluster, 55.0)
        assert not cluster.is_crashed(2)

    def test_faults_do_not_perturb_latency_draws(self):
        # Same simulator seed, faults off vs. a no-op fault plan: the
        # latency RNG stream is untouched, so timings are identical.
        quiet = Cluster(NODES, SCHEME, seed=3)
        planned = Cluster(NODES, SCHEME, seed=3, faults=FaultPlan(seed=9))
        assert quiet.elect(1) and planned.elect(1)
        r1 = quiet.submit("a", leader=1)
        r2 = planned.submit("a", leader=1)
        assert r1.latency_ms == r2.latency_ms


class TestCrashedSenderSuppressed:
    """Regression: a crashed node must not send (bugfix 1)."""

    def test_ack_queued_before_crash_does_not_leak(self):
        # Node 3 is down, so commit hinges on node 2's ack.  Node 2
        # receives the CommitReq (~0.4ms) and would respond after its
        # 5ms processing delay; crashing it at 2ms lands in between.
        # Pre-fix the queued ack still went out and the entry committed.
        cluster = Cluster(
            NODES, SCHEME, seed=1, latency=FLAT, processing_ms=5.0
        )
        assert cluster.elect(1)
        cluster.crash(3)
        cluster.sim.schedule(2.0, lambda: cluster.crash(2))
        with pytest.raises(RuntimeError, match="did not commit"):
            cluster.submit("a", leader=1, max_wait_ms=50.0)
        # The delivery itself happened (the entry is on node 2's disk);
        # only the response was suppressed.
        assert len(cluster.servers[2].log) == 1

    def test_crashed_candidate_emits_no_vote_requests(self):
        cluster = Cluster(NODES, SCHEME, seed=1, latency=FLAT)
        sent_before = cluster.messages_sent
        cluster.crash(2)
        assert not cluster.elect(2)
        assert cluster.messages_sent == sent_before


class TestRestartDemotes:
    """Regression: restart must not resurrect a zombie leader (bugfix 2)."""

    def test_restarted_leader_is_a_follower(self):
        cluster = Cluster(NODES, SCHEME, seed=2)
        assert cluster.elect(1)
        cluster.submit("a", leader=1)
        cluster.crash(1)
        cluster.restart(1)
        assert cluster.servers[1].role == "follower"
        assert cluster.leader() is None  # no zombie reported

    def test_restart_keeps_durable_state_only(self):
        cluster = Cluster(NODES, SCHEME, seed=2)
        assert cluster.elect(1)
        cluster.submit("a", leader=1)
        server = cluster.servers[1]
        log, commit, term = server.log, server.commit_len, server.time
        cluster.crash(1)
        cluster.restart(1)
        # Durable: log, commit length, current term (Raft persists it).
        assert server.log == log
        assert server.commit_len == commit
        assert server.time == term
        # Volatile: role, vote tally, replication bookkeeping.
        assert server.votes == frozenset()
        assert server.acked == {}

    def test_driver_does_not_submit_to_zombie(self):
        cluster = Cluster(NODES, SCHEME, seed=2)
        assert cluster.elect(1)
        driver = FailoverDriver(cluster, leader=1)
        driver.submit(("put", "a", 1))
        cluster.crash(1)
        cluster.restart(1)
        # The restarted node is live but a follower; the driver must
        # fail over (to anyone, possibly node 1 via re-election) and
        # still commit exactly once.
        driver.submit(("put", "b", 2))
        cluster.sync_followers(driver.leader)
        assert cluster.check_safety() == []
        assert payload_count(cluster, driver.leader, ("put", "b", 2)) == 1

    def test_restart_of_live_node_is_a_noop(self):
        cluster = Cluster(NODES, SCHEME, seed=2)
        assert cluster.elect(1)
        cluster.restart(1)  # never crashed: must not demote
        assert cluster.servers[1].role == "leader"


class TestAtMostOnce:
    """Regression: retry after timeout must not double-commit (bugfix 3)."""

    def scenario(self, emulate_prefix_driver: bool) -> Cluster:
        # Asymmetric partition: the leader's CommitReqs reach the
        # followers, but their acks (and votes) back to it are lost.
        # The client times out, fails over to a follower that already
        # holds the entry, and retries.
        plan = FaultPlan(seed=0)
        cluster = Cluster(NODES, SCHEME, seed=1, faults=plan)
        assert cluster.elect(1)
        plan.add_partition(
            cluster.sim.now,
            cluster.sim.now + 100.0,
            {2, 3},
            {1},
            symmetric=False,
        )
        driver = FailoverDriver(
            cluster, leader=1, request_timeout_ms=5.0, election_timeout_ms=50.0
        )
        if emulate_prefix_driver:
            driver._next_request_id = lambda: None  # the pre-fix client
        driver.submit(("put", "x", 1))
        advance_to(cluster, 105.0)
        driver.submit(("put", "y", 2))
        cluster.sync_followers(driver.leader)
        assert cluster.check_safety() == []
        assert len(driver.events) >= 1  # the failover really happened
        self.cluster, self.driver = cluster, driver
        return cluster

    def test_fixed_driver_commits_exactly_once(self):
        cluster = self.scenario(emulate_prefix_driver=False)
        assert payload_count(cluster, self.driver.leader, ("put", "x", 1)) == 1
        assert duplicate_request_audit(cluster) == []

    def test_prefix_driver_double_commits(self):
        # The bug, demonstrated: without request ids the same scenario
        # commits the payload twice.  (This is the assertion that flips
        # if the dedup fix is reverted.)
        cluster = self.scenario(emulate_prefix_driver=True)
        assert payload_count(cluster, self.driver.leader, ("put", "x", 1)) == 2

    def test_dedup_lays_commit_barrier_when_needed(self):
        # After the failover election the deduped entry belongs to an
        # older term; the retry must still commit it (via the no-op
        # barrier) rather than spin until attempts run out.
        cluster = self.scenario(emulate_prefix_driver=False)
        leader_log = cluster.servers[self.driver.leader].committed_log()
        assert any(e.payload == ("noop",) for e in leader_log)

    def test_reconfig_retry_is_deduplicated(self):
        plan = FaultPlan(seed=0)
        cluster = Cluster(
            NODES, SCHEME, seed=1, faults=plan, extra_nodes=frozenset({4})
        )
        assert cluster.elect(1)
        driver = FailoverDriver(
            cluster, leader=1, request_timeout_ms=5.0, election_timeout_ms=50.0
        )
        driver.submit(("put", "warm", 0))  # satisfy R3 at term 1
        heal_at = cluster.sim.now + 100.0
        plan.add_partition(
            cluster.sim.now, heal_at, {2, 3}, {1}, symmetric=False
        )
        driver.reconfigure(frozenset({1, 2, 3, 4}))
        advance_to(cluster, heal_at + 5.0)
        driver.submit(("put", "after", 1))
        cluster.sync_followers(driver.leader)
        config_entries = [
            e
            for e in cluster.servers[driver.leader].committed_log()
            if e.is_config
        ]
        assert len(config_entries) == 1
        assert cluster.check_safety() == []


class TestPartitionHeal:
    def test_failover_across_partition_then_heal(self):
        plan = FaultPlan(seed=0)
        cluster = Cluster(NODES, SCHEME, seed=4, faults=plan)
        assert cluster.elect(1)
        driver = FailoverDriver(
            cluster, leader=1, request_timeout_ms=5.0, election_timeout_ms=50.0
        )
        driver.submit(("put", "pre", 1))
        # Isolate the leader; the majority side must take over.
        heal_at = cluster.sim.now + 80.0
        plan.add_partition(cluster.sim.now, heal_at, {1}, {2, 3})
        driver.submit(("put", "during", 2))
        assert driver.leader in (2, 3)
        # Heal, then write again and push commit indexes everywhere.
        advance_to(cluster, heal_at + 5.0)
        driver.submit(("put", "post", 3))
        cluster.sync_followers(driver.leader)
        assert cluster.check_safety() == []
        assert duplicate_request_audit(cluster) == []
        # The old leader was dethroned and converged on the same log.
        assert cluster.servers[1].committed_log() == cluster.servers[
            driver.leader
        ].committed_log()
        for payload in (("put", "pre", 1), ("put", "during", 2), ("put", "post", 3)):
            assert payload_count(cluster, driver.leader, payload) == 1


class TestDuplicateDelivery:
    def test_duplicated_deliveries_are_independent_objects(self):
        # Regression (ISSUE 3 bugfix a): both fault-injected duplicates
        # used to alias the *same* Msg object, so a handler mutating
        # its received message through a mutable payload corrupted the
        # copy still in flight.  Deliveries must be independent.
        from repro.raft.messages import CommitReq, LogEntry

        plan = FaultPlan(
            seed=0, conditions=NetworkConditions(duplicate_prob=1.0)
        )
        cluster = Cluster(NODES, SCHEME, seed=1, latency=FLAT, faults=plan)
        entry = LogEntry(time=1, vrsn=0, payload=["v"])
        msg = CommitReq(frm=1, to=2, time=1, log=(entry,), commit_len=0)
        seen = []

        def bad_handler_receive(m, sent_lamport=0):
            # Snapshot what arrived, then mutate in place -- the
            # worst-case recipient the transport must tolerate.
            seen.append(list(m.log[0].payload))
            m.log[0].payload.append("corrupted")

        cluster._receive = bad_handler_receive
        cluster._send(msg)
        cluster.sim.drain()
        assert len(seen) == 2  # duplicate_prob=1.0 really duplicated
        assert seen == [["v"], ["v"]]

    def test_every_message_duplicated_is_harmless(self):
        cfg = NemesisConfig(
            seed=5,
            ops=80,
            conditions=NetworkConditions(duplicate_prob=1.0),
        )
        result = run_nemesis(cfg)
        assert result.safety_violations == []
        assert result.linearizability.ok
        assert result.stats.ops_completed == 80


class TestNemesis:
    def test_deterministic_per_seed(self):
        cfg = NemesisConfig(
            seed=11,
            ops=60,
            conditions=NetworkConditions(drop_prob=0.05, duplicate_prob=0.05),
            crash_leader_at=(20,),
        )
        a, b = run_nemesis(cfg), run_nemesis(cfg)
        assert a.stats == b.stats
        assert [op.result for op in a.history.operations] == [
            op.result for op in b.history.operations
        ]

    def test_acceptance_500_ops_full_chaos(self):
        # The ISSUE's acceptance bar: >= 500 ops with drops,
        # duplication, one partition, and two leader crash/restarts;
        # zero safety violations and a passing linearizability check.
        cfg = NemesisConfig(
            seed=7,
            ops=500,
            conditions=NetworkConditions(
                drop_prob=0.02,
                duplicate_prob=0.02,
                reorder_prob=0.1,
                reorder_window_ms=2.0,
            ),
            crash_leader_at=(125, 315),
            partition_at=220,
            partition_ms=40.0,
        )
        result = run_nemesis(cfg)
        assert result.stats.crashes_injected == 2
        assert result.stats.restarts_injected == 2
        assert result.stats.partitions_injected == 1
        assert result.stats.ops_completed >= 450
        assert result.safety_violations == []
        assert result.linearizability.ok
        assert result.ok

    def test_fig16_trajectory_under_churn(self):
        result = run_nemesis(fig16_chaos_config(seed=3, ops=400))
        assert result.safety_violations == []
        assert result.linearizability.ok
        assert result.stats.reconfigs_done >= 3

    def test_nemesis_catches_the_retry_bug(self):
        # End-to-end evidence the checkers have teeth: run the chaos
        # schedule with a pre-fix (request-id-less) client and the
        # at-most-once audit flags the double commit.
        import repro.runtime.nemesis as nemesis_mod
        from repro.runtime.failover import FailoverDriver as RealDriver

        class PrefixDriver(RealDriver):
            def _next_request_id(self):
                return None

        cfg = NemesisConfig(
            seed=2,
            ops=250,
            conditions=NetworkConditions(drop_prob=0.05, reorder_prob=0.2),
            crash_leader_at=(60, 140),
            partition_at=100,
            partition_ms=60.0,
            partition_symmetric=False,
        )
        original = nemesis_mod.FailoverDriver
        nemesis_mod.FailoverDriver = PrefixDriver
        try:
            buggy = nemesis_mod.run_nemesis(cfg)
        finally:
            nemesis_mod.FailoverDriver = original
        fixed = run_nemesis(cfg)
        assert fixed.ok
        assert not buggy.ok  # duplicate commit and/or non-linearizable

    def test_history_checked_not_just_prefixes(self):
        result = run_nemesis(NemesisConfig(seed=1, ops=40))
        # The recorded history is a real artifact: reads observed
        # values, and the checker consumed every operation.
        reads = [op for op in result.history.operations if op.is_read]
        assert result.linearizability.checked_ops == 40
        assert any(op.result is not None for op in reads) or reads == []
        assert check_history(result.history).ok
