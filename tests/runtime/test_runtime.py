"""Tests for the discrete-event simulator, cluster, and KV store."""

import pytest

from repro.runtime import (
    Cluster,
    FaultPlan,
    Fig16Config,
    LatencyModel,
    ReplicatedKV,
    Simulator,
    materialize,
    run_fig16_workload,
)
from repro.raft import LogEntry
from repro.schemes import RaftSingleNodeScheme

NODES = frozenset({1, 2, 3})
SCHEME = RaftSingleNodeScheme()


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator(seed=0)
        seen = []
        sim.schedule(5.0, lambda: seen.append("late"))
        sim.schedule(1.0, lambda: seen.append("early"))
        sim.drain()
        assert seen == ["early", "late"]
        assert sim.now == 5.0

    def test_fifo_for_simultaneous_events(self):
        sim = Simulator(seed=0)
        seen = []
        sim.schedule(1.0, lambda: seen.append("a"))
        sim.schedule(1.0, lambda: seen.append("b"))
        sim.drain()
        assert seen == ["a", "b"]

    def test_negative_delay_rejected(self):
        sim = Simulator(seed=0)
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_run_until(self):
        sim = Simulator(seed=0)
        counter = []
        for i in range(10):
            sim.schedule(float(i), lambda i=i: counter.append(i))
        sim.run_until(lambda: len(counter) >= 3)
        assert len(counter) >= 3
        assert sim.pending() > 0


class TestLatencyModel:
    def test_reproducible_with_seed(self):
        import random

        model = LatencyModel()
        a = model.sample(random.Random(1), 5)
        b = model.sample(random.Random(1), 5)
        assert a == b

    def test_payload_increases_latency(self):
        import random

        model = LatencyModel(jitter=0.0, spike_prob=0.0)
        small = model.sample(random.Random(1), 0)
        large = model.sample(random.Random(1), 1000)
        assert large > small


class TestCluster:
    def test_election_and_requests(self):
        cluster = Cluster(NODES, SCHEME, seed=1)
        assert cluster.elect(1)
        assert cluster.leader() == 1
        record = cluster.submit("a", leader=1)
        assert record.latency_ms > 0
        assert cluster.servers[1].commit_len == 1

    def test_latencies_recorded_in_order(self):
        cluster = Cluster(NODES, SCHEME, seed=2)
        cluster.elect(1)
        for i in range(5):
            cluster.submit(f"m{i}", leader=1)
        assert len(cluster.latencies()) == 5
        assert all(lat > 0 for lat in cluster.latencies())

    def test_safety_holds_throughout(self):
        cluster = Cluster(NODES, SCHEME, seed=3)
        cluster.elect(1)
        for i in range(10):
            cluster.submit(f"m{i}", leader=1)
        cluster.sync_followers(1)
        assert cluster.check_safety() == []

    def test_leader_picks_higher_term_among_two_live_leaders(self):
        # Partition the sitting leader away, elect a new one on the
        # majority side: both report role == leader (the old one never
        # saw the higher term), and leader() must pick the higher term.
        plan = FaultPlan(seed=0)
        cluster = Cluster(NODES, SCHEME, seed=6, faults=plan)
        assert cluster.elect(1)
        plan.add_partition(cluster.sim.now, cluster.sim.now + 10_000.0,
                           {1}, {2, 3})
        assert cluster.elect(2)
        assert cluster.servers[1].role == "leader"  # stale, but live
        assert cluster.servers[2].role == "leader"
        assert cluster.servers[2].time > cluster.servers[1].time
        assert cluster.leader() == 2

    def test_leader_tiebreak_is_by_term_not_node_id(self):
        # Same split with the *higher-numbered* node as the stale
        # leader: the lower-numbered, higher-term winner must be chosen.
        plan = FaultPlan(seed=0)
        cluster = Cluster(NODES, SCHEME, seed=6, faults=plan)
        assert cluster.elect(3)
        plan.add_partition(cluster.sim.now, cluster.sim.now + 10_000.0,
                           {3}, {1, 2})
        assert cluster.elect(1)
        assert cluster.servers[3].role == "leader"
        assert cluster.leader() == 1

    def test_latencies_exclude_pending_and_timed_out_requests(self):
        # A request submitted into a partition times out: its record
        # stays (completed_ms None) but the latency series must only
        # contain completed requests.
        plan = FaultPlan(seed=0)
        cluster = Cluster(NODES, SCHEME, seed=7, faults=plan)
        assert cluster.elect(1)
        cluster.submit("before", leader=1)
        plan.add_partition(cluster.sim.now, cluster.sim.now + 10_000.0,
                           {1}, {2, 3})
        with pytest.raises(RuntimeError, match="did not commit"):
            cluster.submit("stuck", leader=1, max_wait_ms=20.0)
        assert len(cluster.records) == 2
        assert cluster.records[1].completed_ms is None
        assert cluster.records[1].latency_ms is None
        assert len(cluster.latencies()) == 1
        assert cluster.latencies()[0] == cluster.records[0].latency_ms

    def test_reconfiguration_requires_commit_first(self):
        cluster = Cluster(NODES, SCHEME, seed=4, extra_nodes={4})
        cluster.elect(1)
        with pytest.raises(RuntimeError):
            cluster.submit_reconfig(frozenset({1, 2, 3, 4}), leader=1)

    def test_live_reconfiguration(self):
        cluster = Cluster(NODES, SCHEME, seed=5, extra_nodes={4})
        cluster.elect(1)
        cluster.submit("warmup", leader=1)
        record = cluster.submit_reconfig(frozenset({1, 2, 3, 4}), leader=1)
        assert record.is_reconfig
        cluster.submit("after", leader=1)
        cluster.sync_followers(1)
        # The new node caught up.
        assert len(cluster.servers[4].log) == 3
        assert cluster.check_safety() == []


class TestKVStore:
    def test_put_get_delete(self):
        kv = ReplicatedKV(NODES, SCHEME, seed=1)
        kv.put("x", 42)
        assert kv.get("x") == 42
        kv.delete("x")
        assert kv.get("x") is None
        assert kv.get("x", "fallback") == "fallback"

    def test_followers_see_prefix(self):
        kv = ReplicatedKV(NODES, SCHEME, seed=2)
        kv.put("a", 1)
        kv.put("b", 2)
        kv.sync()
        for nid in NODES:
            snapshot = kv.snapshot_at(nid)
            assert snapshot == {"a": 1, "b": 2}

    def test_reconfigure_without_downtime(self):
        kv = ReplicatedKV(NODES, SCHEME, seed=3, extra_nodes={4})
        kv.put("before", 1)
        kv.reconfigure(frozenset({1, 2, 3, 4}))
        kv.put("after", 2)
        kv.sync()
        assert kv.snapshot_at(4) == {"before": 1, "after": 2}

    def test_materialize_skips_config_entries(self):
        entries = (
            LogEntry(1, 1, ("put", "k", 1)),
            LogEntry(1, 2, frozenset({1, 2}), is_config=True),
            LogEntry(1, 3, ("put", "k", 2)),
        )
        assert materialize(entries) == {"k": 2}

    def test_unknown_command_rejected(self):
        from repro.runtime import apply_command

        with pytest.raises(ValueError):
            apply_command({}, ("explode",))


class TestFig16Workload:
    def test_small_run_shape(self):
        cfg = Fig16Config(requests_per_phase=20)
        run = run_fig16_workload(seed=1, config=cfg)
        # 5 phases x 20 requests + 4 reconfigurations.
        assert len(run.latencies_ms) == 104
        assert run.reconfig_indices == [20, 41, 62, 83]
        assert run.phase_sizes == [5, 4, 3, 4, 5]
        assert all(lat > 0 for lat in run.latencies_ms)

    def test_growth_reconfig_slower_than_shrink(self):
        # The Fig. 16 asymmetry: adding a node ships the whole log.
        cfg = Fig16Config(requests_per_phase=150)
        run = run_fig16_workload(seed=2, config=cfg)
        shrink = run.reconfig_latencies_ms[:2]
        grow = run.reconfig_latencies_ms[2:]
        assert max(grow) > max(shrink)

    def test_steady_state_latency_is_flat(self):
        import statistics

        cfg = Fig16Config(requests_per_phase=100)
        run = run_fig16_workload(seed=3, config=cfg)
        first = statistics.median(run.latencies_ms[:50])
        last = statistics.median(run.latencies_ms[-50:])
        assert abs(first - last) < 0.5 * first


class TestFig16ConfigValidation:
    def test_default_config_is_valid(self):
        Fig16Config()

    def test_rejects_multi_node_phase_jump(self):
        with pytest.raises(ValueError):
            Fig16Config(phases=(frozenset({1, 2, 3}), frozenset({1, 4, 5})))

    def test_rejects_nonpositive_requests(self):
        with pytest.raises(ValueError):
            Fig16Config(requests_per_phase=0)

    def test_rejects_leader_outside_a_phase(self):
        with pytest.raises(ValueError):
            Fig16Config(
                phases=(frozenset({1, 2, 3}), frozenset({2, 3})),
                leader=1,
            )

    def test_custom_trajectory(self):
        cfg = Fig16Config(
            requests_per_phase=10,
            phases=(frozenset({1, 2, 3}), frozenset({1, 2, 3, 4})),
        )
        run = run_fig16_workload(seed=5, config=cfg)
        assert len(run.latencies_ms) == 21
        assert run.phase_sizes == [3, 4]
