"""Unit tests for the history recorder and linearizability checker."""

import pytest

from repro.runtime.history import History
from repro.runtime.linearize import check_history, check_key


def h(*ops):
    """Build a history from (op, key, value, inv, res, result) tuples;
    ``res=None`` leaves the operation's outcome unknown."""
    history = History()
    for op, key, value, inv, res, result in ops:
        operation = history.invoke("c", op, key, value, inv)
        if res is not None:
            history.complete(operation, res, result)
    return history


class TestSequential:
    def test_empty_history(self):
        assert check_history(h()).ok

    def test_simple_put_get(self):
        history = h(
            ("put", "k", 1, 0.0, 1.0, True),
            ("get", "k", None, 2.0, 3.0, 1),
        )
        assert check_history(history).ok

    def test_read_of_absent_key(self):
        assert check_history(h(("get", "k", None, 0.0, 1.0, None))).ok

    def test_stale_read_rejected(self):
        history = h(
            ("put", "k", 1, 0.0, 1.0, True),
            ("put", "k", 2, 2.0, 3.0, True),
            ("get", "k", None, 4.0, 5.0, 1),  # observes the old value
        )
        result = check_history(history)
        assert not result.ok
        assert "k" in result.failures

    def test_delete_then_get(self):
        history = h(
            ("put", "k", 1, 0.0, 1.0, True),
            ("delete", "k", None, 2.0, 3.0, True),
            ("get", "k", None, 4.0, 5.0, None),
        )
        assert check_history(history).ok

    def test_add_accumulates(self):
        history = h(
            ("add", "k", 5, 0.0, 1.0, True),
            ("add", "k", 3, 2.0, 3.0, True),
            ("get", "k", None, 4.0, 5.0, 8),
        )
        assert check_history(history).ok

    def test_duplicate_add_effect_rejected(self):
        # One completed add of 5, but a read observing 10: the visible
        # state implies the increment was applied twice -- exactly what
        # the at-most-once retry bug produces.
        history = h(
            ("add", "k", 5, 0.0, 1.0, True),
            ("get", "k", None, 2.0, 3.0, 10),
        )
        assert not check_history(history).ok


class TestConcurrency:
    def test_concurrent_writes_either_order(self):
        # Two overlapping puts; a later read may see either winner.
        for observed in (1, 2):
            history = h(
                ("put", "k", 1, 0.0, 10.0, True),
                ("put", "k", 2, 1.0, 9.0, True),
                ("get", "k", None, 11.0, 12.0, observed),
            )
            assert check_history(history).ok, observed

    def test_real_time_order_enforced(self):
        # Non-overlapping puts: the second strictly follows the first,
        # so a read after both must not see the first value... unless a
        # third concurrent op could explain it -- here there is none.
        history = h(
            ("put", "k", 1, 0.0, 1.0, True),
            ("put", "k", 2, 5.0, 6.0, True),
            ("get", "k", None, 7.0, 8.0, 1),
        )
        assert not check_history(history).ok

    def test_read_concurrent_with_write_sees_either(self):
        for observed in (None, 7):
            history = h(
                ("put", "k", 7, 0.0, 10.0, True),
                ("get", "k", None, 1.0, 2.0, observed),
            )
            assert check_history(history).ok, observed


class TestUnknownOutcomes:
    def test_pending_write_may_apply(self):
        history = h(
            ("put", "k", 3, 0.0, None, None),  # timed out
            ("get", "k", None, 5.0, 6.0, 3),
        )
        assert check_history(history).ok

    def test_pending_write_may_never_apply(self):
        history = h(
            ("put", "k", 3, 0.0, None, None),
            ("get", "k", None, 5.0, 6.0, None),
        )
        assert check_history(history).ok

    def test_pending_write_cannot_apply_before_invocation(self):
        # The unknown-outcome put was invoked *after* the read
        # completed, so the read cannot have observed it.
        history = h(
            ("get", "k", None, 0.0, 1.0, 3),
            ("put", "k", 3, 2.0, None, None),
        )
        assert not check_history(history).ok

    def test_pending_get_unconstrained(self):
        history = h(
            ("put", "k", 1, 0.0, 1.0, True),
            ("get", "k", None, 2.0, None, None),
        )
        assert check_history(history).ok


class TestDecomposition:
    def test_keys_checked_independently(self):
        history = h(
            ("put", "a", 1, 0.0, 1.0, True),
            ("put", "b", 2, 0.5, 1.5, True),
            ("get", "a", None, 2.0, 3.0, 1),
            ("get", "b", None, 2.0, 3.0, 99),  # only b is broken
        )
        result = check_history(history)
        assert not result.ok
        assert list(result.failures) == ["b"]

    def test_per_key_split(self):
        history = h(
            ("put", "a", 1, 0.0, 1.0, True),
            ("put", "b", 2, 2.0, 3.0, True),
        )
        split = history.per_key()
        assert sorted(split) == ["a", "b"]
        assert len(split["a"]) == len(split["b"]) == 1

    def test_state_bound_raises(self):
        ops = [("put", "k", i, 0.0, 100.0, True) for i in range(12)]
        history = h(*ops)
        with pytest.raises(RuntimeError, match="exceeded"):
            check_key(history.operations, max_states=5)
