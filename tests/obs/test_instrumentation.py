"""The instrumented runtime: event coverage, metric fidelity, parity.

The load-bearing invariant is *parity*: tracing and metrics consume no
randomness and schedule no simulator events, so an instrumented run is
bit-identical to a bare run with the same seed.  Everything else here
checks that the events and counters the instrumentation emits actually
describe what the cluster did.
"""

from repro.obs import MetricsRegistry, Tracer, events_by_kind
from repro.runtime import Cluster, FaultPlan, LatencyModel, NetworkConditions
from repro.schemes import RaftSingleNodeScheme

NODES = frozenset({1, 2, 3})
SCHEME = RaftSingleNodeScheme()
FLAT = LatencyModel(jitter=0.0, spike_prob=0.0)


def instrumented_cluster(seed=1, **kwargs):
    tracer = Tracer()
    metrics = MetricsRegistry()
    cluster = Cluster(
        NODES, SCHEME, seed=seed, tracer=tracer, metrics=metrics, **kwargs
    )
    return cluster, tracer, metrics


class TestEventCoverage:
    def test_election_and_request_trace(self):
        cluster, tracer, _ = instrumented_cluster()
        assert cluster.elect(1)
        cluster.submit("a", leader=1)
        kinds = {e.kind for e in tracer.snapshot()}
        assert {
            "send", "receive", "election_start", "leader_elected",
            "commit", "client_invoke", "client_response",
        } <= kinds

    def test_commit_events_carry_advancing_lengths(self):
        cluster, tracer, _ = instrumented_cluster()
        assert cluster.elect(1)
        cluster.submit("a", leader=1)
        cluster.submit("b", leader=1)
        commits = events_by_kind(tracer.snapshot(), "commit")
        leader_commits = [e for e in commits if e.node == 1]
        lengths = [e.data["commit_len"] for e in leader_commits]
        assert lengths == sorted(lengths)
        assert lengths[-1] == 2

    def test_crash_restart_and_reconfig_trace(self):
        cluster, tracer, _ = instrumented_cluster(seed=2)
        assert cluster.elect(1)
        cluster.submit("a", leader=1)
        cluster.crash(3)
        cluster.restart(3)
        cluster.submit_reconfig(frozenset({1, 2}), 1)
        kinds = [e.kind for e in tracer.snapshot()]
        assert "crash" in kinds and "restart" in kinds
        reconfigs = events_by_kind(tracer.snapshot(), "reconfig")
        assert reconfigs[0].data["members"] == [1, 2]

    def test_drop_events_name_their_reason(self):
        plan = FaultPlan(seed=0)
        cluster, tracer, _ = instrumented_cluster(seed=1, faults=plan)
        assert cluster.elect(1)
        plan.add_partition(
            cluster.sim.now, cluster.sim.now + 1000.0, {1}, {2, 3}
        )
        try:
            cluster.submit("a", leader=1, max_wait_ms=20.0)
        except RuntimeError:
            pass
        drops = events_by_kind(tracer.snapshot(), "drop")
        assert drops and all(e.data["reason"] == "partition" for e in drops)

    def test_lamport_joins_across_the_simulated_network(self):
        cluster, tracer, _ = instrumented_cluster()
        assert cluster.elect(1)
        cluster.submit("a", leader=1)
        for event in events_by_kind(tracer.snapshot(), "receive"):
            assert event.lamport > event.data["sent_lamport"]


class TestMetricFidelity:
    def test_counters_mirror_cluster_tallies(self):
        cluster, _, metrics = instrumented_cluster()
        assert cluster.elect(1)
        cluster.submit("a", leader=1)
        snap = metrics.snapshot()
        assert snap["counters"]["cluster.messages_sent"] == (
            cluster.messages_sent
        )
        assert snap["counters"]["cluster.entries_committed"] >= 1
        assert snap["counters"]["cluster.requests_submitted"] == 1
        assert snap["counters"]["cluster.requests_completed"] == 1
        assert snap["histograms"]["cluster.request_latency_ms"]["count"] == 1
        assert snap["histograms"]["cluster.election_ms"]["count"] == 1

    def test_latency_histogram_matches_records(self):
        cluster, _, metrics = instrumented_cluster(seed=4)
        assert cluster.elect(1)
        for i in range(5):
            cluster.submit(f"req-{i}", leader=1)
        hist = metrics.histogram("cluster.request_latency_ms")
        assert hist.count == 5
        assert hist.total == sum(cluster.latencies())


class TestParity:
    def test_instrumented_run_is_bit_identical_to_bare(self):
        bare = Cluster(NODES, SCHEME, seed=3)
        inst, _, _ = instrumented_cluster(seed=3)
        assert bare.elect(1) and inst.elect(1)
        for i in range(10):
            a = bare.submit(f"req-{i}", leader=1)
            b = inst.submit(f"req-{i}", leader=1)
            assert a.latency_ms == b.latency_ms
        assert bare.messages_sent == inst.messages_sent
        assert bare.sim.now == inst.sim.now

    def test_parity_under_faults(self):
        conditions = NetworkConditions(drop_prob=0.1, duplicate_prob=0.1)
        bare = Cluster(
            NODES, SCHEME, seed=5, faults=FaultPlan(seed=9, conditions=conditions)
        )
        inst, _, _ = instrumented_cluster(
            seed=5, faults=FaultPlan(seed=9, conditions=conditions)
        )
        assert bare.elect(1) and inst.elect(1)

        def attempt(cluster, i):
            # Drops can time a request out; parity means the *outcome*
            # (success latency or failure) is identical, not that every
            # request succeeds.
            try:
                return cluster.submit(f"req-{i}", leader=1, max_wait_ms=500.0)
            except RuntimeError:
                return None

        for i in range(10):
            a = attempt(bare, i)
            b = attempt(inst, i)
            assert (a is None) == (b is None)
            if a is not None:
                assert a.latency_ms == b.latency_ms
        assert bare.sim.now == inst.sim.now
