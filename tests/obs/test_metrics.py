"""Counters, gauges, reservoir histograms, and the registry snapshot."""

import random

import pytest

from repro.obs import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
)


class TestCounter:
    def test_increments(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_cannot_decrease(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            Counter("x").inc(-1)


class TestGauge:
    def test_last_value_wins(self):
        g = Gauge("frontier")
        g.set(10)
        g.set(3)
        assert g.value == 3


class TestHistogram:
    def test_summary_on_known_values(self):
        h = Histogram("lat")
        for v in range(1, 101):  # 1..100
            h.observe(float(v))
        s = h.summary()
        assert s["count"] == 100
        assert s["min"] == 1.0 and s["max"] == 100.0
        assert s["mean"] == pytest.approx(50.5)
        # Reservoir holds everything (100 < 1024): exact percentiles.
        assert h.percentile(50) == pytest.approx(50.5)
        assert h.percentile(95) == pytest.approx(95.05)
        assert h.percentile(0) == 1.0 and h.percentile(100) == 100.0

    def test_empty_histogram(self):
        h = Histogram("lat")
        assert h.percentile(99) == 0.0
        assert h.summary()["count"] == 0
        assert h.mean == 0.0

    def test_percentile_bounds_checked(self):
        with pytest.raises(ValueError):
            Histogram("lat").percentile(101)

    def test_reservoir_bounds_memory(self):
        h = Histogram("lat", reservoir_size=16)
        for v in range(1000):
            h.observe(float(v))
        assert len(h._samples) == 16
        assert h.count == 1000  # totals are exact even when sampled

    def test_percentiles_reproducible_across_runs(self):
        # The reservoir RNG is seeded from the name: two identical
        # observation streams report identical percentiles.
        rng = random.Random(7)
        values = [rng.expovariate(1.0) for _ in range(5000)]
        a, b = Histogram("lat", 64), Histogram("lat", 64)
        for v in values:
            a.observe(v)
            b.observe(v)
        assert a.percentile(99) == b.percentile(99)
        assert a.summary() == b.summary()


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")

    def test_snapshot_is_plain_and_sorted(self):
        import json

        reg = MetricsRegistry()
        reg.counter("z.sent").inc(3)
        reg.counter("a.dropped").inc()
        reg.gauge("frontier").set(12)
        reg.histogram("lat").observe(1.5)
        snap = reg.snapshot()
        assert snap["counters"] == {"a.dropped": 1, "z.sent": 3}
        assert snap["gauges"] == {"frontier": 12}
        assert snap["histograms"]["lat"]["count"] == 1
        json.dumps(snap)  # bundle-manifest serializable

    def test_describe_mentions_every_instrument(self):
        reg = MetricsRegistry()
        reg.counter("sent").inc()
        reg.histogram("lat").observe(2.0)
        text = reg.describe()
        assert "sent = 1" in text and "lat:" in text


class TestNullMetrics:
    def test_disabled_and_free(self):
        assert NULL_METRICS.enabled is False
        c = NULL_METRICS.counter("anything")
        c.inc(100)
        assert c.value == 0
        NULL_METRICS.gauge("g").set(5)
        NULL_METRICS.histogram("h").observe(1.0)
        assert NULL_METRICS.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }

    def test_shared_instrument(self):
        reg = NullMetrics()
        assert reg.counter("a") is reg.histogram("b")
        assert isinstance(reg, MetricsRegistry)
