"""Violation bundles: write on failure, load, replay to the same verdict."""

import json
import os

import pytest

from repro.obs import (
    ViolationBundle,
    find_bundles,
    load_bundle,
    nemesis_config_from_dict,
    nemesis_config_to_dict,
    replay_bundle,
    verdict_matches,
    write_bundle,
)
from repro.runtime import NemesisConfig, NetworkConditions, run_nemesis


def violating_config(bundle_dir=None):
    """A chaos schedule that a request-id-less client demonstrably fails
    (same scenario the nemesis regression test uses)."""
    return NemesisConfig(
        seed=2,
        ops=250,
        conditions=NetworkConditions(drop_prob=0.05, reorder_prob=0.2),
        crash_leader_at=(60, 140),
        partition_at=100,
        partition_ms=60.0,
        partition_symmetric=False,
        client_request_ids=False,  # the historical pre-dedup client
        bundle_dir=bundle_dir,
    )


class TestConfigSerialization:
    def test_round_trip(self):
        config = violating_config()
        raw = nemesis_config_to_dict(config)
        json.dumps(raw)  # JSON-safe
        restored = nemesis_config_from_dict(raw)
        # bundle_dir is deliberately not serialized; everything else is.
        config.bundle_dir = None
        assert restored == config

    def test_default_config_round_trips_too(self):
        config = NemesisConfig()
        assert nemesis_config_from_dict(nemesis_config_to_dict(config)) == config


class TestBundleLifecycle:
    @pytest.fixture(scope="class")
    def violation(self, tmp_path_factory):
        bundle_dir = str(tmp_path_factory.mktemp("bundles"))
        result = run_nemesis(violating_config(bundle_dir))
        assert not result.ok  # the scenario really violates
        return bundle_dir, result

    def test_failed_run_writes_a_bundle(self, violation):
        bundle_dir, result = violation
        assert result.bundle_path is not None
        assert find_bundles(bundle_dir) == [result.bundle_path]
        for name in ("manifest.json", "trace.jsonl", "history.jsonl"):
            assert os.path.isfile(os.path.join(result.bundle_path, name))

    def test_bundle_contents(self, violation):
        _, result = violation
        bundle = load_bundle(result.bundle_path)
        assert isinstance(bundle, ViolationBundle)
        assert bundle.seed == 2
        assert bundle.verdict["ok"] is False
        assert len(bundle.history.operations) == 250
        assert bundle.events  # the trace is populated
        kinds = {e.kind for e in bundle.events}
        assert "partition_start" in kinds and "crash" in kinds
        # The manifest records the metrics snapshot of the failed run.
        assert bundle.manifest["metrics"]["counters"][
            "nemesis.fault_activations"
        ] > 0

    def test_replay_reproduces_the_verdict(self, violation):
        # The acceptance criterion: same seed => same violation.
        _, result = violation
        bundle = load_bundle(result.bundle_path)
        replayed = replay_bundle(bundle)
        assert not replayed.ok
        assert verdict_matches(bundle, replayed)
        assert replayed.bundle_path is None  # replays never nest bundles

    def test_replay_accepts_a_path(self, violation):
        _, result = violation
        replayed = replay_bundle(result.bundle_path)
        assert verdict_matches(load_bundle(result.bundle_path), replayed)

    def test_rerun_overwrites_not_accumulates(self, violation):
        bundle_dir, result = violation
        again = run_nemesis(violating_config(bundle_dir))
        assert again.bundle_path == result.bundle_path
        assert len(find_bundles(bundle_dir)) == 1


class TestBundleEdges:
    def test_clean_run_writes_no_bundle(self, tmp_path):
        config = NemesisConfig(seed=1, ops=30, bundle_dir=str(tmp_path))
        result = run_nemesis(config)
        assert result.ok
        assert result.bundle_path is None
        assert find_bundles(str(tmp_path)) == []

    def test_version_mismatch_is_rejected(self, tmp_path):
        config = NemesisConfig(seed=2, ops=30)
        result = run_nemesis(config)
        path = write_bundle(str(tmp_path), result)
        manifest_path = os.path.join(path, "manifest.json")
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        manifest["version"] = 999
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(ValueError, match="version"):
            load_bundle(path)

    def test_find_bundles_on_missing_directory(self, tmp_path):
        assert find_bundles(str(tmp_path / "nope")) == []
