"""The tracer: closed vocabulary, Lamport clocks, ring buffer, JSONL."""

import json

import pytest

from repro.obs import (
    EVENT_KINDS,
    NULL_TRACER,
    TRACE_HEADER_KEY,
    NullTracer,
    TraceEvent,
    Tracer,
    events_by_kind,
    load_jsonl,
    load_jsonl_header,
)
from repro.obs.metrics import MetricsRegistry


class TestVocabulary:
    def test_unknown_kind_is_rejected(self):
        tracer = Tracer()
        with pytest.raises(ValueError, match="unknown event kind"):
            tracer.record("typo_event", 0.0, 1)

    def test_every_documented_kind_is_accepted(self):
        tracer = Tracer()
        for kind in sorted(EVENT_KINDS):
            tracer.record(kind, 0.0, 1)
        assert tracer.recorded == len(EVENT_KINDS)


class TestLamport:
    def test_local_events_tick_per_node(self):
        tracer = Tracer()
        assert tracer.record("commit", 0.0, 1) == 1
        assert tracer.record("commit", 1.0, 1) == 2
        assert tracer.record("commit", 1.0, 2) == 1  # separate clock

    def test_receive_joins_the_senders_clock(self):
        tracer = Tracer()
        # Sender far ahead: the receiver's clock must jump past it.
        for _ in range(5):
            tracer.record("commit", 0.0, 1)
        stamp = tracer.send(1.0, 1, 2, "CommitReq")
        assert stamp == 6
        assert tracer.receive(2.0, 2, 1, "CommitReq", stamp) == 7
        # Receiver ahead of a stale stamp: max() keeps it monotone.
        assert tracer.receive(3.0, 2, 1, "CommitReq", 1) == 8

    def test_lamport_consistent_with_happens_before(self):
        # send happens-before its receive, even when sim-time ties.
        tracer = Tracer()
        s = tracer.send(5.0, 1, 2, "ElectReq")
        r = tracer.receive(5.0, 2, 1, "ElectReq", s)
        assert r > s


class TestRingBuffer:
    def test_overflow_evicts_oldest_and_keeps_total(self):
        tracer = Tracer(capacity=4)
        for i in range(10):
            tracer.record("commit", float(i), 1, index=i)
        assert len(tracer.events) == 4
        assert tracer.recorded == 10  # overflow is detectable
        assert [e.data["index"] for e in tracer.snapshot()] == [6, 7, 8, 9]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_eviction_is_counted_not_silent(self):
        tracer = Tracer(capacity=4)
        for i in range(10):
            tracer.record("commit", float(i), 1, index=i)
        assert tracer.dropped == 6
        assert tracer.recorded - tracer.dropped == len(tracer.events)

    def test_eviction_mirrors_into_metrics(self):
        metrics = MetricsRegistry()
        tracer = Tracer(capacity=2, metrics=metrics)
        for i in range(5):
            tracer.record("commit", float(i), 1)
        assert metrics.counter("trace.dropped").value == 3

    def test_sink_sees_every_event_before_eviction(self):
        seen = []
        tracer = Tracer(capacity=2, sink=seen.append)
        for i in range(6):
            tracer.record("commit", float(i), 1, index=i)
        # The ring kept 2; the sink (the monitor's feed) missed none.
        assert [e.data["index"] for e in seen] == list(range(6))


class TestExport:
    def test_jsonl_round_trip(self, tmp_path):
        tracer = Tracer()
        tracer.send(1.0, 1, 2, "CommitReq")
        tracer.record("leader_elected", 2.5, 2, term=3)
        path = str(tmp_path / "trace.jsonl")
        assert tracer.dump_jsonl(path) == 2
        loaded = load_jsonl(path)
        assert loaded == tracer.snapshot()
        assert loaded[1].data == {"term": 3}

    def test_export_header_reports_drops(self, tmp_path):
        tracer = Tracer(capacity=2)
        for i in range(5):
            tracer.record("commit", float(i), 1)
        path = str(tmp_path / "trace.jsonl")
        tracer.dump_jsonl(path)
        header = load_jsonl_header(path)
        assert header["recorded"] == 5
        assert header["dropped"] == 3
        assert header["capacity"] == 2
        # The header never leaks into the event stream.
        events = load_jsonl(path)
        assert len(events) == 2
        assert all(TRACE_HEADER_KEY not in e.data for e in events)

    def test_load_tolerates_headerless_dumps(self, tmp_path):
        # Dumps from before the header existed must still load.
        tracer = Tracer()
        tracer.record("commit", 1.0, 1, index=0)
        path = str(tmp_path / "old.jsonl")
        with open(path, "w") as handle:
            for event in tracer.snapshot():
                handle.write(json.dumps(event.to_dict()) + "\n")
        assert load_jsonl(path) == tracer.snapshot()
        assert load_jsonl_header(path) == {}

    def test_event_dict_round_trip(self):
        event = TraceEvent("drop", 3.0, 1, 7, {"to": 2, "reason": "loss"})
        assert TraceEvent.from_dict(event.to_dict()) == event

    def test_events_by_kind_preserves_order(self):
        tracer = Tracer()
        tracer.record("commit", 0.0, 1)
        tracer.record("crash", 1.0, 2)
        tracer.record("commit", 2.0, 1)
        commits = events_by_kind(tracer.snapshot(), "commit")
        assert [e.t_ms for e in commits] == [0.0, 2.0]

    def test_describe_is_one_line(self):
        event = TraceEvent("restart", 1.0, 3, 2, {"term": 1})
        text = event.describe()
        assert "restart" in text and "\n" not in text


class TestNullTracer:
    def test_disabled_and_recordless(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.record("commit", 0.0, 1) == 0
        assert NULL_TRACER.send(0.0, 1, 2, "CommitReq") == 0
        assert NULL_TRACER.receive(0.0, 2, 1, "CommitReq", 9) == 0
        assert NULL_TRACER.recorded == 0
        assert NULL_TRACER.snapshot() == []

    def test_is_a_tracer(self):
        # Call sites hold a Tracer-typed reference; the null object must
        # substitute transparently.
        assert isinstance(NullTracer(), Tracer)
